#include "unicorn/optimizer.h"

#include <algorithm>
#include <limits>

namespace unicorn {

CampaignOptions ToCampaignOptions(const OptimizeOptions& options) {
  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.engine = options.engine;
  campaign.broker = options.broker;
  campaign.seed = options.seed;
  return campaign;
}

OptimizePolicy::OptimizePolicy(OptimizeOptions options, std::vector<size_t> objective_vars,
                               const DataTable* warm_start)
    : options_(std::move(options)),
      objective_vars_(std::move(objective_vars)),
      warm_start_(warm_start),
      rng_(options_.seed),
      best_value_(std::numeric_limits<double>::infinity()) {}

double OptimizePolicy::Scalarize(const std::vector<double>& row) const {
  // Equal weights for "best" (the Pareto front is recovered from `evaluated`
  // by the caller).
  double acc = 0.0;
  for (size_t v : objective_vars_) {
    acc += row[v];
  }
  return acc / static_cast<double>(objective_vars_.size());
}

void OptimizePolicy::Record(const std::vector<double>& config,
                            const std::vector<double>& row) {
  std::vector<double> objs;
  objs.reserve(objective_vars_.size());
  for (size_t v : objective_vars_) {
    objs.push_back(row[v]);
  }
  result_.evaluated.push_back(std::move(objs));
  ++result_.measurements_used;
  const double value = Scalarize(row);
  if (value < best_value_) {
    best_value_ = value;
    best_config_ = config;
  }
  result_.best_trajectory.push_back(best_value_);
}

std::vector<std::string> OptimizePolicy::ProposalEnvironments(size_t proposal_size) {
  return options_.environment.empty()
             ? std::vector<std::string>{}
             : std::vector<std::string>(proposal_size, options_.environment);
}

bool OptimizePolicy::WantsRefresh(const CampaignContext& ctx) {
  return bootstrapped_ && !finished_ && iter_ < options_.max_iterations &&
         (iter_ >= next_relearn_ || !ctx.engine.HasModel());
}

std::vector<double> OptimizePolicy::MakeCandidate(const CampaignContext& ctx,
                                                  const CausalEffectEstimator& estimator) {
  std::vector<double> candidate = best_config_;
  // Random scalarization weights diversify the Pareto search direction.
  std::vector<double> weights(objective_vars_.size(), 1.0);
  if (objective_vars_.size() > 1) {
    double total = 0.0;
    for (auto& w : weights) {
      w = rng_.Uniform(0.05, 1.0);
      total += w;
    }
    for (auto& w : weights) {
      w /= total;
    }
  }
  for (size_t m = 0; m < options_.mutations_per_step; ++m) {
    // Option chosen proportionally to its causal effect.
    const size_t pick = rng_.Categorical(option_ace_);
    const size_t var = ctx.task.option_vars[pick];
    // Choose the level the interventional estimate prefers under the
    // current scalarization (softmax-free: greedy with random ties).
    const int levels = estimator.NumLevels(var);
    int best_level = 0;
    double best_pred = std::numeric_limits<double>::infinity();
    for (int l = 0; l < levels; ++l) {
      double pred = 0.0;
      for (size_t o = 0; o < objective_vars_.size(); ++o) {
        pred += weights[o] * estimator.ExpectationDo(objective_vars_[o], var, l);
      }
      if (pred < best_pred) {
        best_pred = pred;
        best_level = l;
      }
    }
    // Occasionally explore a random level instead of the greedy one.
    if (rng_.Bernoulli(0.25) && levels > 1) {
      best_level = static_cast<int>(rng_.UniformInt(static_cast<uint64_t>(levels)));
    }
    candidate[pick] = estimator.ValueOfLevel(var, best_level);
  }
  return candidate;
}

std::vector<std::vector<double>> OptimizePolicy::Propose(CampaignContext& ctx) {
  if (!bootstrapped_) {
    ctx.engine.Reserve(ctx.engine.data().NumRows() +
                       (warm_start_ != nullptr ? warm_start_->NumRows() : 0) +
                       options_.initial_samples + options_.max_iterations);
    if (warm_start_ != nullptr) {
      ctx.engine.AppendRows(*warm_start_, RowProvenance::kSource);
    }
    std::vector<std::vector<double>> batch = options_.anchor_configs;
    batch.reserve(batch.size() + options_.initial_samples);
    for (size_t i = 0; i < options_.initial_samples; ++i) {
      batch.push_back(ctx.task.sample_config(&rng_));
    }
    if (batch.empty()) {
      // Warm-start-only transfer: nothing to bootstrap, go straight to
      // candidates (an empty proposal would retire the policy).
      bootstrapped_ = true;
    } else {
      return batch;
    }
  }

  if (iter_ >= options_.max_iterations) {
    finished_ = true;
    return {};
  }
  if (iter_ >= next_relearn_) {
    next_relearn_ = iter_ + options_.relearn_every;
  }
  // Rebuild the ACE sampling weights whenever the shared engine refreshed
  // since they were last computed (by this policy's schedule or by a
  // co-running policy).
  if (ctx.engine.HasModel() &&
      (!have_weights_ || ctx.engine.stats().refreshes != refreshes_seen_)) {
    const CausalEffectEstimator& estimator = ctx.engine.Estimator();
    option_ace_.assign(ctx.task.option_vars.size(), 1.0);
    for (size_t i = 0; i < ctx.task.option_vars.size(); ++i) {
      double acc = 0.0;
      for (size_t v : objective_vars_) {
        acc += estimator.Ace(v, ctx.task.option_vars[i]);
      }
      option_ace_[i] = acc / static_cast<double>(objective_vars_.size());
    }
    refreshes_seen_ = ctx.engine.stats().refreshes;
    have_weights_ = true;
  }

  const size_t want =
      std::min(options_.candidates_per_round, options_.max_iterations - iter_);
  std::vector<std::vector<double>> batch;
  batch.reserve(std::max<size_t>(want, 1));
  for (size_t c = 0; c < std::max<size_t>(want, 1); ++c) {
    if (!have_weights_ || best_config_.empty() ||
        rng_.Bernoulli(options_.explore_probability)) {
      batch.push_back(ctx.task.sample_config(&rng_));
    } else {
      batch.push_back(MakeCandidate(ctx, ctx.engine.Estimator()));
    }
  }
  return batch;
}

void OptimizePolicy::Absorb(const std::vector<std::vector<double>>& configs,
                            const std::vector<std::vector<double>>& rows,
                            CampaignContext& ctx) {
  for (size_t k = 0; k < rows.size(); ++k) {
    ctx.engine.AddRow(rows[k]);
    Record(configs[k], rows[k]);
    if (bootstrapped_) {
      ++iter_;
    }
  }
  // The CI-state extension is deferred to Refresh() (one O(appended) step
  // on entry, see DebugPolicy::Absorb): on the pipeline's refresh workers
  // it overlaps device service time, and an optimizer past its last relearn
  // never pays it at all. Bit-identical: nothing reads the test state
  // between absorb and refresh.
  if (!bootstrapped_) {
    bootstrapped_ = true;
    return;
  }
  if (iter_ >= options_.max_iterations) {
    finished_ = true;
  }
}

void OptimizePolicy::Finalize(CampaignContext& ctx) {
  result_.engine_stats = ctx.engine.stats();
  result_.shard = ctx.shard;
  if (ctx.pool != nullptr) {
    result_.pool_stats = ctx.pool->stats();
  }
  result_.broker_stats = ctx.broker.stats();
  result_.source_rows = ctx.engine.ProvenanceRows(RowProvenance::kSource);
  result_.target_rows = ctx.engine.ProvenanceRows(RowProvenance::kTarget);
  result_.best_config = best_config_;
  result_.best_value = best_value_;
}

UnicornOptimizer::UnicornOptimizer(PerformanceTask task, OptimizeOptions options)
    : task_(std::move(task)), options_(std::move(options)) {}

OptimizeResult UnicornOptimizer::Minimize(size_t objective_var, const DataTable* warm_start) {
  return Run({objective_var}, warm_start);
}

OptimizeResult UnicornOptimizer::MinimizeMulti(const std::vector<size_t>& objective_vars,
                                               const DataTable* warm_start) {
  return Run(objective_vars, warm_start);
}

OptimizeResult UnicornOptimizer::Run(const std::vector<size_t>& objective_vars,
                                     const DataTable* warm_start) {
  CampaignRunner runner(task_, ToCampaignOptions(options_));
  OptimizePolicy policy(options_, objective_vars, warm_start);
  runner.Run({&policy});
  return policy.TakeResult();
}

}  // namespace unicorn
