// Unicorn performance optimization (paper §7, Fig. 15).
//
// The same causal active-learning loop pointed at minimization instead of
// repair: options are mutated with probability proportional to their average
// causal effect on the objective(s), the new value is the level the
// interventional estimate prefers, and the causal model is refreshed
// periodically. Multi-objective mode keeps a Pareto archive and scalarizes
// with fresh random weights each step.
#ifndef UNICORN_UNICORN_OPTIMIZER_H_
#define UNICORN_UNICORN_OPTIMIZER_H_

#include "causal/effects.h"
#include "unicorn/model_learner.h"
#include "unicorn/task.h"

namespace unicorn {

struct OptimizeOptions {
  size_t initial_samples = 25;
  size_t max_iterations = 200;
  size_t relearn_every = 10;       // causal model refresh period
  size_t mutations_per_step = 3;   // options changed per candidate
  double explore_probability = 0.15;  // chance of a uniform-random candidate
  CausalModelOptions model;
  // Incremental-discovery knobs for the engine held across refreshes.
  EngineOptions engine;
  uint64_t seed = 13;
};

struct OptimizeResult {
  std::vector<double> best_config;
  double best_value = 0.0;
  // Best-so-far objective value after each measurement (for Fig. 15 a/b).
  std::vector<double> best_trajectory;
  // All measured objective vectors (for Pareto fronts / hypervolume traces).
  std::vector<std::vector<double>> evaluated;
  size_t measurements_used = 0;
  // Discovery-cost accounting of the engine across all model refreshes.
  EngineStats engine_stats;
};

class UnicornOptimizer {
 public:
  UnicornOptimizer(PerformanceTask task, OptimizeOptions options);

  // Minimizes a single objective.
  OptimizeResult Minimize(size_t objective_var, const DataTable* warm_start = nullptr);

  // Minimizes several objectives jointly; `evaluated` rows follow
  // `objective_vars` order and best_* track the last scalarization.
  OptimizeResult MinimizeMulti(const std::vector<size_t>& objective_vars,
                               const DataTable* warm_start = nullptr);

 private:
  OptimizeResult Run(const std::vector<size_t>& objective_vars, const DataTable* warm_start);

  PerformanceTask task_;
  OptimizeOptions options_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_OPTIMIZER_H_
