// Unicorn performance optimization (paper §7, Fig. 15).
//
// The same causal active-learning loop pointed at minimization instead of
// repair: options are mutated with probability proportional to their average
// causal effect on the objective(s), the new value is the level the
// interventional estimate prefers, and the causal model is refreshed
// periodically. Multi-objective mode keeps a Pareto archive and scalarizes
// with fresh random weights each step.
//
// The loop lives in OptimizePolicy, a CampaignPolicy over the shared
// CampaignRunner (bootstrap batch + one or more candidates per round through
// the measurement broker); UnicornOptimizer is the thin single-policy
// wrapper.
#ifndef UNICORN_UNICORN_OPTIMIZER_H_
#define UNICORN_UNICORN_OPTIMIZER_H_

#include <vector>

#include "causal/effects.h"
#include "unicorn/campaign.h"
#include "unicorn/model_learner.h"
#include "unicorn/task.h"

namespace unicorn {

struct OptimizeOptions {
  // Configurations measured (and eligible as incumbents) ahead of the
  // random bootstrap samples — e.g. a source campaign's optimum when
  // refining it under a transferred model. Unlike a warm-start table, these
  // are measured fresh in THIS task's environment.
  std::vector<std::vector<double>> anchor_configs;
  size_t initial_samples = 25;
  size_t max_iterations = 200;     // total candidate measurements after bootstrap
  size_t relearn_every = 10;       // causal model refresh period (in candidates)
  size_t mutations_per_step = 3;   // options changed per candidate
  size_t candidates_per_round = 1;  // candidates measured as one broker batch
  double explore_probability = 0.15;  // chance of a uniform-random candidate
  CausalModelOptions model;
  // Incremental-discovery knobs for the engine held across refreshes.
  EngineOptions engine;
  // Measurement-plane knobs (bootstrap + candidate batches).
  BrokerOptions broker;
  // Environment routing tag for every measurement this policy requests
  // (see DebugOptions::environment). Empty = any backend.
  std::string environment;
  uint64_t seed = 13;
};

// The campaign-level slice of OptimizeOptions (see the DebugOptions
// counterpart in debugger.h).
CampaignOptions ToCampaignOptions(const OptimizeOptions& options);

struct OptimizeResult {
  std::vector<double> best_config;
  double best_value = 0.0;
  // Best-so-far objective value after each measurement (for Fig. 15 a/b).
  std::vector<double> best_trajectory;
  // All measured objective vectors (for Pareto fronts / hypervolume traces).
  std::vector<std::vector<double>> evaluated;
  size_t measurements_used = 0;
  // Row-provenance split of the engine's table at finalize (see
  // DebugResult::source_rows/target_rows).
  size_t source_rows = 0;
  size_t target_rows = 0;
  // Discovery-cost accounting of the engine shard across all its model
  // refreshes (see DebugResult::engine_stats).
  EngineStats engine_stats;
  // Shard index and pool-wide aggregate (see DebugResult counterparts).
  size_t shard = 0;
  ShardPoolStats pool_stats;
  // Measurement-plane accounting of the campaign's broker.
  BrokerStats broker_stats;
};

// The optimization loop as a campaign policy: round 0 proposes the bootstrap
// batch, every later round proposes `candidates_per_round` candidates
// (mutations of the incumbent, or uniform exploration) and absorbs their
// rows. ACE sampling weights are rebuilt whenever the shared engine was
// refreshed since they were last computed — including refreshes another
// policy in the campaign triggered.
class OptimizePolicy : public CampaignPolicy {
 public:
  OptimizePolicy(OptimizeOptions options, std::vector<size_t> objective_vars,
                 const DataTable* warm_start = nullptr);

  bool WantsRefresh(const CampaignContext& ctx) override;
  std::vector<std::vector<double>> Propose(CampaignContext& ctx) override;
  std::vector<std::string> ProposalEnvironments(size_t proposal_size) override;
  void Absorb(const std::vector<std::vector<double>>& configs,
              const std::vector<std::vector<double>>& rows, CampaignContext& ctx) override;
  bool Finished() const override { return finished_; }
  void Finalize(CampaignContext& ctx) override;

  const OptimizeResult& result() const { return result_; }
  OptimizeResult TakeResult() { return std::move(result_); }

 private:
  double Scalarize(const std::vector<double>& row) const;
  void Record(const std::vector<double>& config, const std::vector<double>& row);
  std::vector<double> MakeCandidate(const CampaignContext& ctx,
                                    const CausalEffectEstimator& estimator);

  OptimizeOptions options_;
  std::vector<size_t> objective_vars_;
  const DataTable* warm_start_;
  Rng rng_;

  bool bootstrapped_ = false;
  bool finished_ = false;
  size_t iter_ = 0;           // candidates absorbed so far
  size_t next_relearn_ = 0;   // iter_ at which the next refresh is due
  size_t refreshes_seen_ = 0;  // engine refresh count when weights were built
  bool have_weights_ = false;
  std::vector<double> option_ace_;
  double best_value_ = 0.0;
  std::vector<double> best_config_;
  OptimizeResult result_;
};

class UnicornOptimizer {
 public:
  UnicornOptimizer(PerformanceTask task, OptimizeOptions options);

  // Minimizes a single objective.
  OptimizeResult Minimize(size_t objective_var, const DataTable* warm_start = nullptr);

  // Minimizes several objectives jointly; `evaluated` rows follow
  // `objective_vars` order and best_* track the last scalarization.
  OptimizeResult MinimizeMulti(const std::vector<size_t>& objective_vars,
                               const DataTable* warm_start = nullptr);

 private:
  OptimizeResult Run(const std::vector<size_t>& objective_vars, const DataTable* warm_start);

  PerformanceTask task_;
  OptimizeOptions options_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_OPTIMIZER_H_
