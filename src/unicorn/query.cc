#include "unicorn/query.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace unicorn {

QueryAnswer EstimateQuery(const CausalEffectEstimator& estimator,
                          const PerformanceQuery& query) {
  QueryAnswer answer;
  const int level = estimator.LevelOf(query.option, query.option_value);
  if (query.threshold.has_value()) {
    answer.is_probability = true;
    answer.value =
        estimator.ProbabilityLeqDo(query.objective, *query.threshold, query.option, level);
  } else {
    answer.value = estimator.ExpectationDo(query.objective, query.option, level);
  }
  return answer;
}

QueryAnswer EstimateQuery(CausalModelEngine& engine, const PerformanceQuery& query) {
  return EstimateQuery(engine.Estimator(), query);
}

namespace {

std::string Strip(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

std::optional<PerformanceQuery> ParseQuery(const std::string& text, const DataTable& data) {
  // Grammar: ('P'|'E') '(' objective [ '<=' number ] '|' 'do' '(' option '=' number ')' ')'
  const std::string s = Strip(text);
  if (s.size() < 4 || (s[0] != 'P' && s[0] != 'E') || s[1] != '(') {
    return std::nullopt;
  }
  const bool is_prob = s[0] == 'P';
  const size_t bar = s.find('|');
  if (bar == std::string::npos) {
    return std::nullopt;
  }
  std::string lhs = Strip(s.substr(2, bar - 2));
  PerformanceQuery query;

  const size_t leq = lhs.find("<=");
  if (leq != std::string::npos) {
    if (!is_prob) {
      return std::nullopt;
    }
    const std::string num = Strip(lhs.substr(leq + 2));
    try {
      query.threshold = std::stod(num);
    } catch (...) {
      return std::nullopt;
    }
    lhs = Strip(lhs.substr(0, leq));
  } else if (is_prob) {
    return std::nullopt;  // P-queries need a threshold
  }
  const auto obj = data.IndexOf(lhs);
  if (!obj.has_value()) {
    return std::nullopt;
  }
  query.objective = *obj;

  // Right-hand side: do(option=value))
  std::string rhs = Strip(s.substr(bar + 1));
  if (rhs.rfind("do", 0) != 0) {
    return std::nullopt;
  }
  const size_t open = rhs.find('(');
  const size_t close = rhs.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close <= open) {
    return std::nullopt;
  }
  // Trim the trailing outer ')' if present inside the captured span.
  std::string inner = rhs.substr(open + 1, close - open - 1);
  const size_t inner_close = inner.find(')');
  if (inner_close != std::string::npos) {
    inner = inner.substr(0, inner_close);
  }
  const size_t eq = inner.find('=');
  if (eq == std::string::npos) {
    return std::nullopt;
  }
  const auto opt = data.IndexOf(Strip(inner.substr(0, eq)));
  if (!opt.has_value()) {
    return std::nullopt;
  }
  query.option = *opt;
  try {
    query.option_value = std::stod(Strip(inner.substr(eq + 1)));
  } catch (...) {
    return std::nullopt;
  }
  return query;
}

}  // namespace unicorn
