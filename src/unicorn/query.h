// Stage I & V: the performance-query interface of the causal inference
// engine (paper Fig. 7). Users phrase QoS questions such as
//   "P(throughput > 40/s | do(BufferSize = 6k))"
// which the engine translates to interventional estimates on the learned
// causal performance model.
#ifndef UNICORN_UNICORN_QUERY_H_
#define UNICORN_UNICORN_QUERY_H_

#include <optional>
#include <string>

#include "causal/effects.h"
#include "unicorn/model_learner.h"

namespace unicorn {

// One interventional probability / expectation query.
struct PerformanceQuery {
  // The intervention: set `option` to `option_value` (raw scale).
  size_t option = 0;
  double option_value = 0.0;
  // The measured quantity.
  size_t objective = 0;
  // When set, asks P(objective <= threshold | do(option = value));
  // otherwise asks E[objective | do(option = value)].
  std::optional<double> threshold;
};

struct QueryAnswer {
  double value = 0.0;  // probability or expectation
  bool is_probability = false;
};

QueryAnswer EstimateQuery(const CausalEffectEstimator& estimator, const PerformanceQuery& query);

// Convenience: answers against an engine's current model (the engine must
// have refreshed at least once). Uses the engine's lazily built estimator,
// so repeated queries between refreshes share one discretization.
QueryAnswer EstimateQuery(CausalModelEngine& engine, const PerformanceQuery& query);

// Parses a tiny textual query language (demonstrating the paper's "specify
// performance query" stage):
//   "P(latency <= 30 | do(buffer_size=6000))"
//   "E(energy | do(bitrate=2000))"
// Returns nullopt on malformed input or unknown variable names.
std::optional<PerformanceQuery> ParseQuery(const std::string& text, const DataTable& data);

}  // namespace unicorn

#endif  // UNICORN_UNICORN_QUERY_H_
