// The interface between Unicorn and a deployed configurable system.
//
// Unicorn never sees a system's internals: it samples configurations,
// measures them (options + system events + objectives come back as one row),
// and reasons on the resulting table — the same contract the paper's tool has
// with `perf` on a Jetson board.
#ifndef UNICORN_UNICORN_TASK_H_
#define UNICORN_UNICORN_TASK_H_

#include <functional>
#include <vector>

#include "causal/counterfactual.h"
#include "stats/table.h"
#include "util/rng.h"

namespace unicorn {

struct PerformanceTask {
  // Metadata for every variable (options, events, objectives).
  std::vector<Variable> variables;

  // Measures one configuration (option values in option order) and returns
  // the full variable row. This is the expensive operation the active
  // learning loop budgets. Contract for the measurement plane: measure must
  // be safe to call concurrently from MeasurementBroker pool threads and
  // deterministic per configuration (harness tasks derive a per-call RNG
  // from the config hash); the broker's batch==serial and dedup-cache
  // guarantees rest on this.
  std::function<std::vector<double>(const std::vector<double>&)> measure;

  // Samples a uniform-random configuration.
  std::function<std::vector<double>(Rng*)> sample_config;

  // Indices of option variables, in the order configs are laid out.
  std::vector<size_t> option_vars;

  // Builds an empty data table with this task's variables.
  DataTable EmptyTable() const { return DataTable(variables); }

  // Extracts the option values of a full measurement row.
  std::vector<double> ConfigOf(const std::vector<double>& row) const {
    std::vector<double> config;
    config.reserve(option_vars.size());
    for (size_t v : option_vars) {
      config.push_back(row[v]);
    }
    return config;
  }
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_TASK_H_
