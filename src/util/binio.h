// Little-endian binary I/O helpers shared by the persisted binary formats
// (the binary MeasurementTable and the CI-cache snapshot).
//
// All on-disk integers are fixed-width little-endian; doubles are the IEEE
// bit pattern of the value, moved via memcpy. Writers serialize field by
// field (never whole structs), so padding and ABI layout can't leak into the
// formats. Readers bounds-check before every access; these helpers only
// move bytes.
#ifndef UNICORN_UTIL_BINIO_H_
#define UNICORN_UTIL_BINIO_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>

namespace unicorn {
namespace binio {

// The byte-order probe written into every binary header. A reader on a
// different-endian host sees the bytes reversed and rejects the file rather
// than silently mis-reading every value.
inline constexpr uint32_t kEndianMarker = 0x01020304u;

inline void WriteU32(std::ostream& out, uint32_t v) {
  unsigned char b[4];
  b[0] = static_cast<unsigned char>(v);
  b[1] = static_cast<unsigned char>(v >> 8);
  b[2] = static_cast<unsigned char>(v >> 16);
  b[3] = static_cast<unsigned char>(v >> 24);
  out.write(reinterpret_cast<const char*>(b), 4);
}

inline void WriteU64(std::ostream& out, uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(b), 8);
}

inline void WriteDouble(std::ostream& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(out, bits);
}

inline bool ReadU32(std::istream& in, uint32_t* v) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) {
    return false;
  }
  *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

inline bool ReadU64(std::istream& in, uint64_t* v) {
  unsigned char b[8];
  if (!in.read(reinterpret_cast<char*>(b), 8)) {
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(b[i]) << (8 * i);
  }
  *v = out;
  return true;
}

inline bool ReadDouble(std::istream& in, double* v) {
  uint64_t bits;
  if (!ReadU64(in, &bits)) {
    return false;
  }
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

// In-memory (mmap'd buffer) readers: the caller has already bounds-checked.
inline uint32_t LoadU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t LoadU64(const unsigned char* p) {
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return out;
}

// Whether this host stores doubles/integers little-endian (the only layout
// the zero-copy binary table view can alias directly).
inline bool HostIsLittleEndian() {
  const uint32_t probe = kEndianMarker;
  unsigned char bytes[4];
  std::memcpy(bytes, &probe, 4);
  return bytes[0] == 0x04;
}

}  // namespace binio
}  // namespace unicorn

#endif  // UNICORN_UTIL_BINIO_H_
