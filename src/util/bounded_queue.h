// A bounded MPMC blocking queue.
//
// Push blocks while the queue is at capacity, giving producers natural
// backpressure against a slow consumer; ForcePush bypasses the bound for
// paths where blocking the producer could deadlock and dropping the item is
// worse than briefly exceeding the bound. Close() wakes every waiter:
// pushes fail from then on, pops drain what is left and then fail.
//
// The backend fleet uses one of these as its completion stream (workers
// ForcePush finished requests, the broker Pops them). The fleet's
// per-backend WORK queues are plain deques under the fleet mutex instead:
// routing needs atomic load comparisons across all queues, which no
// per-queue lock can provide.
#ifndef UNICORN_UTIL_BOUNDED_QUEUE_H_
#define UNICORN_UTIL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace unicorn {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. Returns false (item not enqueued) once
  // the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    item_cv_.notify_one();
    return true;
  }

  // Enqueues regardless of capacity (never blocks). Returns false only if
  // the queue is closed.
  bool ForcePush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    item_cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    item_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return false;  // closed and drained
    }
    *out = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    return true;
  }

  // Timed pop: blocks up to `timeout` for an item. False on timeout as well
  // as when closed and drained — callers that must tell the two apart check
  // closed() (the campaign scheduler only needs "nothing yet", so it doesn't).
  template <typename Rep, typename Period>
  bool PopFor(T* out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!item_cv_.wait_for(lock, timeout, [&] { return closed_ || !items_.empty(); })) {
      return false;
    }
    if (items_.empty()) {
      return false;  // closed and drained
    }
    *out = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    return true;
  }

  // Non-blocking pop; false when empty (or closed and drained).
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    return true;
  }

  // Removes and returns everything currently queued (for circuit-break
  // migration: a retired backend's queue is drained and rerouted).
  std::vector<T> DrainNow() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<T> drained;
    drained.reserve(items_.size());
    for (auto& item : items_) {
      drained.push_back(std::move(item));
    }
    items_.clear();
    space_cv_.notify_all();
    return drained;
  }

  // After Close(): Push/ForcePush fail, Pop drains remaining items then
  // fails. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable item_cv_;   // consumers: item available or closed
  std::condition_variable space_cv_;  // producers: space available or closed
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace unicorn

#endif  // UNICORN_UTIL_BOUNDED_QUEUE_H_
