#include "util/csv.h"

#include <sstream>

namespace unicorn {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

CsvWriter::~CsvWriter() = default;

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) {
      out_ << ',';
    }
    out_ << CsvEscape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values) {
  std::ostringstream oss;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) {
      oss << ',';
    }
    oss << values[i];
  }
  out_ << oss.str() << '\n';
}

}  // namespace unicorn
