#include "util/csv.h"

#include <cstdio>
#include <sstream>

namespace unicorn {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

CsvWriter::~CsvWriter() = default;

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) {
      out_ << ',';
    }
    out_ << CsvEscape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values, int precision) {
  std::ostringstream oss;
  char buffer[64];
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) {
      oss << ',';
    }
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, values[i]);
    oss << buffer;
  }
  out_ << oss.str() << '\n';
}

CsvReader::CsvReader(const std::string& path) : in_(path) {}

CsvReader::~CsvReader() = default;

std::vector<std::string> CsvSplit(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

bool CsvReader::ReadRow(std::vector<std::string>* fields) {
  std::string line;
  if (!std::getline(in_, line)) {
    return false;
  }
  // A quoted field may span physical lines: keep appending while the quote
  // count is odd (escaped quotes contribute pairs, so parity is right).
  size_t quotes = 0;
  for (char c : line) {
    quotes += (c == '"');
  }
  std::string next;
  while (quotes % 2 == 1 && std::getline(in_, next)) {
    line += '\n';
    line += next;
    for (char c : next) {
      quotes += (c == '"');
    }
  }
  *fields = CsvSplit(line);
  return true;
}

}  // namespace unicorn
