// Minimal CSV writer used by benchmarks to dump table/figure data.
#ifndef UNICORN_UTIL_CSV_H_
#define UNICORN_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace unicorn {

// Writes rows of strings/doubles to a CSV file. Quotes fields that contain
// separators. Intentionally minimal: this project only writes CSVs.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  bool ok() const { return out_.good(); }

  void WriteRow(const std::vector<std::string>& fields);
  void WriteNumericRow(const std::vector<double>& values);

 private:
  std::ofstream out_;
};

// Escapes a single CSV field (adds quotes when needed).
std::string CsvEscape(const std::string& field);

}  // namespace unicorn

#endif  // UNICORN_UTIL_CSV_H_
