// Minimal CSV writer/reader: benchmarks dump table/figure data, and the
// measurement plane persists/replays measurement tables (broker cache,
// RecordedBackend) through one on-disk format.
#ifndef UNICORN_UTIL_CSV_H_
#define UNICORN_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace unicorn {

// Writes rows of strings/doubles to a CSV file. Quotes fields that contain
// separators.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  bool ok() const { return out_.good(); }

  void WriteRow(const std::vector<std::string>& fields);
  // `precision` is the printf %.*g significant-digit count. The default
  // keeps bench output compact; persistence paths that must round-trip
  // doubles bit-exactly pass 17 (max_digits10).
  void WriteNumericRow(const std::vector<double>& values, int precision = 6);

 private:
  std::ofstream out_;
};

// Escapes a single CSV field (adds quotes when needed).
std::string CsvEscape(const std::string& field);

// Streaming CSV reader matching CsvWriter's dialect (RFC-4180-style quoting,
// LF or CRLF line ends). ReadRow returns false at end of input.
class CsvReader {
 public:
  explicit CsvReader(const std::string& path);
  ~CsvReader();

  bool ok() const { return static_cast<bool>(in_); }

  bool ReadRow(std::vector<std::string>* fields);

 private:
  std::ifstream in_;
};

// Splits one CSV record into fields (exposed for tests).
std::vector<std::string> CsvSplit(const std::string& line);

}  // namespace unicorn

#endif  // UNICORN_UTIL_CSV_H_
