// Deterministic value hashing for canonical-configuration keys.
//
// The measurement plane keys its dedup cache on the exact bit pattern of a
// configuration vector, and the simulated harness derives each measurement's
// noise stream from (task seed, config hash) so that measuring is a pure
// function of the configuration — safe on pool threads and independent of
// call order. Both need the same cheap, deterministic, well-mixed hash.
#ifndef UNICORN_UTIL_HASH_H_
#define UNICORN_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace unicorn {

// splitmix64 finalizer: a cheap full-avalanche 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-sensitive hash of a double vector by bit pattern. Configurations come
// from finite option domains, so bitwise identity is the right notion of
// "same configuration" (0.0 and -0.0 hash differently, which is fine: both
// sides of a comparison always produce values the same way).
inline uint64_t HashDoubles(const std::vector<double>& values, uint64_t seed = 0) {
  uint64_t h = Mix64(seed ^ (0xa0761d6478bd642fULL + values.size()));
  for (double v : values) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h = Mix64(h ^ bits);
  }
  return h;
}

// Hasher for containers keyed on full configuration vectors.
struct ConfigHash {
  size_t operator()(const std::vector<double>& v) const {
    return static_cast<size_t>(HashDoubles(v));
  }
};

}  // namespace unicorn

#endif  // UNICORN_UTIL_HASH_H_
