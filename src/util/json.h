// Minimal recursive-descent JSON parser, header-only. Exists so the trace
// toolchain (tools/trace_report) and the obs tests can validate the JSON the
// observability layer emits without taking an external dependency — it is a
// consumer-side checker, not a general serialization library (writers in
// this repo emit JSON by hand, as before).
//
// Supports the full JSON value grammar: objects, arrays, strings with
// escapes (\uXXXX collapses to '?' — the repo never emits non-ASCII),
// numbers, true/false/null. Parse failures return nullptr with a
// position-annotated message.
#ifndef UNICORN_UTIL_JSON_H_
#define UNICORN_UTIL_JSON_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace unicorn {
namespace json {

struct Value;
using ValuePtr = std::unique_ptr<Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<ValuePtr> array_value;
  // Preserves insertion order (vector of pairs) so checkers can mirror the
  // emitted layout; Find does a linear scan — fine for the small objects
  // (trace events, stats blocks) this parses.
  std::vector<std::pair<std::string, ValuePtr>> object_value;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  const Value* Find(const std::string& key) const {
    if (type != Type::kObject) {
      return nullptr;
    }
    for (const auto& [k, v] : object_value) {
      if (k == key) {
        return v.get();
      }
    }
    return nullptr;
  }
  double NumberOr(double fallback) const {
    return type == Type::kNumber ? number_value : fallback;
  }
  const std::string& StringOr(const std::string& fallback) const {
    return type == Type::kString ? string_value : fallback;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parses one JSON value followed only by whitespace. Returns nullptr and
  /// sets error() on malformed input.
  ValuePtr Parse() {
    ValuePtr value = ParseValue();
    if (value == nullptr) {
      return nullptr;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

  const std::string& error() const { return error_; }

 private:
  ValuePtr Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return nullptr;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ValuePtr ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  ValuePtr ParseObject() {
    ++pos_;  // '{'
    auto value = std::make_unique<Value>();
    value->type = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key in object");
      }
      ValuePtr key = ParseString();
      if (key == nullptr) {
        return nullptr;
      }
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      ValuePtr member = ParseValue();
      if (member == nullptr) {
        return nullptr;
      }
      value->object_value.emplace_back(std::move(key->string_value), std::move(member));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  ValuePtr ParseArray() {
    ++pos_;  // '['
    auto value = std::make_unique<Value>();
    value->type = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return value;
    }
    while (true) {
      ValuePtr element = ParseValue();
      if (element == nullptr) {
        return nullptr;
      }
      value->array_value.push_back(std::move(element));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  ValuePtr ParseString() {
    ++pos_;  // '"'
    auto value = std::make_unique<Value>();
    value->type = Value::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return value;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': value->string_value.push_back('"'); break;
          case '\\': value->string_value.push_back('\\'); break;
          case '/': value->string_value.push_back('/'); break;
          case 'b': value->string_value.push_back('\b'); break;
          case 'f': value->string_value.push_back('\f'); break;
          case 'n': value->string_value.push_back('\n'); break;
          case 'r': value->string_value.push_back('\r'); break;
          case 't': value->string_value.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                return Fail("bad \\u escape");
              }
            }
            pos_ += 4;
            value->string_value.push_back('?');
            break;
          }
          default:
            return Fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      } else {
        value->string_value.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  ValuePtr ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      return Fail("malformed number");
    }
    auto value = std::make_unique<Value>();
    value->type = Value::Type::kNumber;
    value->number_value = parsed;
    return value;
  }

  ValuePtr ParseBool() {
    auto value = std::make_unique<Value>();
    value->type = Value::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      value->bool_value = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      value->bool_value = false;
      return value;
    }
    return Fail("bad literal");
  }

  ValuePtr ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_unique<Value>();
    }
    return Fail("bad literal");
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

/// Convenience wrapper: parse `text`, return nullptr on failure (with the
/// message in *error when non-null).
inline ValuePtr Parse(const std::string& text, std::string* error = nullptr) {
  Parser parser(text);
  ValuePtr value = parser.Parse();
  if (value == nullptr && error != nullptr) {
    *error = parser.error();
  }
  return value;
}

}  // namespace json
}  // namespace unicorn

#endif  // UNICORN_UTIL_JSON_H_
