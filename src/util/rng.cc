#include "util/rng.h"

#include <cmath>

namespace unicorn {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      total += w;
    }
  }
  if (total <= 0.0) {
    return static_cast<size_t>(UniformInt(static_cast<uint64_t>(weights.size())));
  }
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      target -= weights[i];
      if (target <= 0.0) {
        return i;
      }
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace unicorn
