// Deterministic random number generation for reproducible experiments.
//
// All stochastic code in this repository draws from Rng so that every test,
// example, and benchmark is bit-for-bit reproducible from a seed. The engine
// is xoshiro256** seeded through splitmix64, which has good statistical
// quality and is cheap enough for inner measurement loops.
#ifndef UNICORN_UTIL_RNG_H_
#define UNICORN_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace unicorn {

// A small, fast, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires hi >= lo.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double Gaussian();

  // Normal with mean/stddev.
  double Gaussian(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Index in [0, weights.size()) sampled proportionally to non-negative
  // weights. If all weights are zero, samples uniformly.
  size_t Categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) {
      return;
    }
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Derives an independent child stream; used to give each subsystem its own
  // stream without correlated draws.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace unicorn

#endif  // UNICORN_UTIL_RNG_H_
