#include "util/text_table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace unicorn {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddRow(const std::string& label, const std::vector<double>& values,
                       int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(FormatDouble(v, precision));
  }
  AddRow(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      oss << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    oss << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  oss << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return oss.str();
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

}  // namespace unicorn
