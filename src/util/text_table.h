// Fixed-width text table renderer. Benchmarks use this to print the
// paper-shaped rows (Table 2, Table 3, ...) to stdout.
#ifndef UNICORN_UTIL_TEXT_TABLE_H_
#define UNICORN_UTIL_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace unicorn {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values, int precision = 2);

  // Renders the table with aligned columns and a header rule.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (helper shared by benches).
std::string FormatDouble(double v, int precision = 2);

}  // namespace unicorn

#endif  // UNICORN_UTIL_TEXT_TABLE_H_
