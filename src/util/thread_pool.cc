#include "util/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace unicorn {

namespace {

// Best-effort CPU pinning: worker `index` goes to CPU index % hardware
// cores. Failure (cgroup-restricted mask, exotic topology) is silently
// ignored — affinity is a performance hint, never a correctness dependency.
void PinToCpu(std::thread& thread, int index) {
#if defined(__linux__)
  const unsigned cpus = std::thread::hardware_concurrency();
  if (cpus == 0) {
    return;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(index) % cpus, &set);
  pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)index;
#endif
}

}  // namespace

namespace {

// Trace-plane worker label: "<pool>/<index>", applied on the worker itself
// before it starts pulling work. A copy of the name is captured — the
// Options object does not outlive construction.
void NameWorker(const std::string& pool_name, int index) {
  if (!pool_name.empty()) {
    obs::trace::SetThreadName(pool_name + "/" + std::to_string(index));
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) : ThreadPool(Options{num_threads, false, {}}) {}

ThreadPool::ThreadPool(const Options& options) {
  const int workers = options.num_threads - 1;
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, name = options.name, i] {
      NameWorker(name, i);
      WorkerLoop();
    });
    if (options.pin_threads) {
      PinToCpu(workers_.back(), i);
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::RunBatch() {
  const std::function<void(size_t)>& body = *body_;
  const size_t count = count_;
  while (true) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) {
      break;
    }
    body(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
    }
    RunBatch();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& body) {
  if (count == 0) {
    return;
  }
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  RunBatch();  // the caller pulls items too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
}

TaskPool::TaskPool(const Options& options) {
  const int workers = options.num_threads < 1 ? 1 : options.num_threads;
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, name = options.name, i] {
      NameWorker(name, i);
      WorkerLoop();
    });
    if (options.pin_threads) {
      PinToCpu(workers_.back(), i);
    }
  }
}

TaskPool::~TaskPool() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

// Heap "less": the top is the highest priority, earliest submission on ties.
bool TaskPool::TaskAfter(const QueuedTask& a, const QueuedTask& b) {
  if (a.priority != b.priority) {
    return a.priority < b.priority;
  }
  return a.seq > b.seq;
}

void TaskPool::Submit(std::function<void()> task, int64_t priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(QueuedTask{priority, next_seq_++, std::move(task)});
    std::push_heap(tasks_.begin(), tasks_.end(), TaskAfter);
  }
  work_cv_.notify_one();
}

void TaskPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return tasks_.empty() && running_ == 0; });
}

void TaskPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stop requested and queue drained
      }
      std::pop_heap(tasks_.begin(), tasks_.end(), TaskAfter);
      task = std::move(tasks_.back().task);
      tasks_.pop_back();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0 && tasks_.empty()) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace unicorn
