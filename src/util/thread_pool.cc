#include "util/thread_pool.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <string>
#include <utility>

#include "obs/trace.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace unicorn {

namespace {

// Best-effort pin of `thread` to the one logical CPU chosen by PlanPinning.
// Failure (mask raced with a cgroup change, exotic topology) is silently
// ignored — affinity is a performance hint, never a correctness dependency.
void PinToCpu(std::thread& thread, int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)cpu;
#endif
}

#if defined(__linux__)
// One sysfs topology integer ("core_id", "physical_package_id"), or -1.
int ReadTopologyId(int cpu, const char* leaf) {
  std::ifstream in("/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/" + leaf);
  int value = -1;
  in >> value;
  return in ? value : -1;
}
#endif

}  // namespace

CpuTopology DetectCpuTopology() {
  CpuTopology topo;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) != 0) {
    topo.logical_cpus = static_cast<int>(std::thread::hardware_concurrency());
    return topo;
  }
  // Distinct (package, core) pairs over the *allowed* CPUs only: a
  // cgroup-restricted container must plan against its slice, not the host.
  std::set<std::pair<int, int>> cores;
  bool structure_known = true;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &mask)) {
      continue;
    }
    ++topo.logical_cpus;
    const int core = ReadTopologyId(cpu, "core_id");
    if (core < 0) {
      structure_known = false;
      continue;
    }
    const int package = std::max(0, ReadTopologyId(cpu, "physical_package_id"));
    if (cores.insert({package, core}).second) {
      topo.core_leaders.push_back(cpu);  // first allowed CPU seen on the core
    }
  }
  if (structure_known && !cores.empty()) {
    topo.physical_cores = static_cast<int>(cores.size());
    topo.smt_siblings = topo.logical_cpus > topo.physical_cores;
  } else {
    topo.core_leaders.clear();  // partial structure: don't pretend to know it
  }
#else
  topo.logical_cpus = static_cast<int>(std::thread::hardware_concurrency());
#endif
  return topo;
}

std::vector<int> PlanPinning(const CpuTopology& topo, int total_threads) {
  // Pin only when every pool thread can own a whole physical core. With more
  // threads than cores a pinned thread cannot migrate away from the
  // contention it causes, and the OS scheduler beats any static placement —
  // the measured pin_threads regression on small containers.
  if (topo.physical_cores <= 0 || total_threads <= 0 || total_threads > topo.physical_cores) {
    return {};
  }
  return topo.core_leaders;
}

namespace {

// Trace-plane worker label: "<pool>/<index>", applied on the worker itself
// before it starts pulling work. A copy of the name is captured — the
// Options object does not outlive construction.
void NameWorker(const std::string& pool_name, int index) {
  if (!pool_name.empty()) {
    obs::trace::SetThreadName(pool_name + "/" + std::to_string(index));
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) : ThreadPool(Options{num_threads, false, {}}) {}

ThreadPool::ThreadPool(const Options& options) {
  const int workers = options.num_threads - 1;
  // The caller participates in every batch, so the plan must cover
  // workers + 1 busy threads; leaders[0] is left to the (unpinned) caller.
  std::vector<int> plan;
  if (options.pin_threads && workers > 0) {
    plan = PlanPinning(DetectCpuTopology(), options.num_threads);
  }
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, name = options.name, i] {
      NameWorker(name, i);
      WorkerLoop();
    });
    if (!plan.empty()) {
      PinToCpu(workers_.back(), plan[static_cast<size_t>(i + 1) % plan.size()]);
      ++pinned_workers_;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::RunBatch() {
  const std::function<void(size_t)>& body = *body_;
  const size_t count = count_;
  while (true) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) {
      break;
    }
    body(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
    }
    RunBatch();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& body) {
  if (count == 0) {
    return;
  }
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  RunBatch();  // the caller pulls items too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
}

TaskPool::TaskPool(const Options& options) {
  const int workers = options.num_threads < 1 ? 1 : options.num_threads;
  // Unlike ThreadPool the caller never runs tasks, so the plan covers
  // exactly the workers.
  std::vector<int> plan;
  if (options.pin_threads) {
    plan = PlanPinning(DetectCpuTopology(), workers);
  }
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, name = options.name, i] {
      NameWorker(name, i);
      WorkerLoop();
    });
    if (!plan.empty()) {
      PinToCpu(workers_.back(), plan[static_cast<size_t>(i) % plan.size()]);
      ++pinned_workers_;
    }
  }
}

TaskPool::~TaskPool() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

// Heap "less": the top is the highest priority, earliest submission on ties.
bool TaskPool::TaskAfter(const QueuedTask& a, const QueuedTask& b) {
  if (a.priority != b.priority) {
    return a.priority < b.priority;
  }
  return a.seq > b.seq;
}

void TaskPool::Submit(std::function<void()> task, int64_t priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(QueuedTask{priority, next_seq_++, std::move(task)});
    std::push_heap(tasks_.begin(), tasks_.end(), TaskAfter);
  }
  work_cv_.notify_one();
}

void TaskPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return tasks_.empty() && running_ == 0; });
}

void TaskPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stop requested and queue drained
      }
      std::pop_heap(tasks_.begin(), tasks_.end(), TaskAfter);
      task = std::move(tasks_.back().task);
      tasks_.pop_back();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0 && tasks_.empty()) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace unicorn
