#include "util/thread_pool.h"

namespace unicorn {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = num_threads - 1;
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::RunBatch() {
  const std::function<void(size_t)>& body = *body_;
  const size_t count = count_;
  while (true) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) {
      break;
    }
    body(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
    }
    RunBatch();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& body) {
  if (count == 0) {
    return;
  }
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  RunBatch();  // the caller pulls items too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
}

}  // namespace unicorn
