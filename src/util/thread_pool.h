// A small fixed-size thread pool with a blocking parallel-for.
//
// Built for the per-level edge sweep of the PC-stable skeleton search: the
// caller hands over `count` independent work items, workers pull indices from
// a shared atomic counter, and ParallelFor returns once every item ran. The
// calling thread participates, so ThreadPool(1) degenerates to an inline
// loop and a pool is always safe to use regardless of hardware.
#ifndef UNICORN_UTIL_THREAD_POOL_H_
#define UNICORN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace unicorn {

class ThreadPool {
 public:
  // `num_threads` <= 1 keeps no worker threads (ParallelFor runs inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs body(i) for every i in [0, count). Blocks until all items finished.
  // The body must not call ParallelFor on the same pool. Items run in
  // unspecified order and concurrently; they must be independent.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  // Worker threads plus the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

 private:
  void WorkerLoop();
  void RunBatch();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new batch or shutdown
  std::condition_variable done_cv_;   // caller: batch finished
  const std::function<void(size_t)>* body_ = nullptr;
  size_t count_ = 0;
  std::atomic<size_t> next_{0};
  size_t active_ = 0;       // workers still inside the current batch
  uint64_t generation_ = 0;  // bumped per batch so workers never re-run one
  bool stop_ = false;
};

// Batch-submit helper: evaluates fn(i) for every i in [0, count) on the pool
// (inline, in order, when `pool` is null) and returns the results in index
// order — the ordered fan-out primitive under the measurement broker's
// batches. fn must be safe to call concurrently; each result slot is written
// by exactly one item.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, size_t count, const Fn& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(count);
  if (pool == nullptr || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      out[i] = fn(i);
    }
    return out;
  }
  pool->ParallelFor(count, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace unicorn

#endif  // UNICORN_UTIL_THREAD_POOL_H_
