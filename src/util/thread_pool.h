// Small fixed-size thread pools: a blocking parallel-for (ThreadPool) and a
// fire-and-forget task queue (TaskPool).
//
// ThreadPool was built for the per-level edge sweep of the PC-stable skeleton
// search: the caller hands over `count` independent work items, workers pull
// indices from a shared atomic counter, and ParallelFor returns once every
// item ran. The calling thread participates, so ThreadPool(1) degenerates to
// an inline loop and a pool is always safe to use regardless of hardware.
//
// TaskPool is the asynchronous sibling under the campaign scheduler's shard
// refreshes: Submit enqueues a task and returns immediately; completion is
// whatever side effect the task performs (the shard pool pushes a done event).
#ifndef UNICORN_UTIL_THREAD_POOL_H_
#define UNICORN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace unicorn {

/// Snapshot of the CPU resources actually available to this process: the
/// affinity mask (cgroup- and taskset-aware), the distinct physical cores
/// behind it, and whether hyperthread siblings share those cores.
struct CpuTopology {
  int logical_cpus = 0;       // CPUs in the process affinity mask
  int physical_cores = 0;     // distinct (package, core) pairs; 0 = unknown
  bool smt_siblings = false;  // some physical core backs >1 allowed CPU
  /// Lowest-numbered allowed logical CPU of each distinct physical core, in
  /// CPU-id order — the pin targets that never straddle hyperthread siblings.
  std::vector<int> core_leaders;
};

/// Reads the process affinity mask and sysfs core/package ids. Cheap enough
/// to call at every pool construction; no caching. Non-Linux builds report
/// hardware_concurrency with unknown core structure.
CpuTopology DetectCpuTopology();

/// Pin targets for a pool that will run `total_threads` busy threads, or
/// empty when the pool should not pin at all. Pinning only pays off when
/// every pool thread can own a whole physical core: if the core structure is
/// unknown, or `total_threads` exceeds the distinct physical cores (the pool
/// would oversubscribe, and a pinned thread cannot migrate away from the
/// contention it causes — the failure mode behind the measured
/// sweep_rt4_pinned regression on small containers), the plan is empty and
/// the pool falls back to OS scheduling. Otherwise the plan is one logical
/// CPU per physical core (`core_leaders`), so pinned threads never share a
/// core with each other's hyperthread sibling.
std::vector<int> PlanPinning(const CpuTopology& topo, int total_threads);

/// Shared knobs of both pool flavors. Plain value type.
struct ThreadPoolOptions {
  /// ThreadPool: workers + the calling thread; TaskPool: worker count.
  int num_threads = 1;
  /// Pin each worker to one CPU via the OS affinity call, following
  /// PlanPinning above: topology is detected at pool construction and the
  /// request is silently skipped when the pool would oversubscribe the
  /// physical cores or the topology is unreadable (pinned_workers() reports
  /// what actually happened). Best-effort and off by default: pinning helps
  /// steady refresh sweeps on large hosts but hurts whenever the pool shares
  /// cores with other busy threads. Non-Linux builds ignore it.
  bool pin_threads = false;
  /// Observability label for the pool's workers: worker i registers as
  /// "<name>/<i>" with the trace layer (obs::trace::SetThreadName), so spans
  /// recorded on pool threads land on named Perfetto tracks. Empty = workers
  /// stay unnamed. No effect on execution.
  std::string name;
};

class ThreadPool {
 public:
  using Options = ThreadPoolOptions;

  // `num_threads` <= 1 keeps no worker threads (ParallelFor runs inline).
  explicit ThreadPool(int num_threads);
  explicit ThreadPool(const Options& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs body(i) for every i in [0, count). Blocks until all items finished.
  // The body must not call ParallelFor on the same pool. Items run in
  // unspecified order and concurrently; they must be independent.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  // Worker threads plus the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Workers actually pinned (0 when pin_threads was off or PlanPinning
  // declined; the caller thread is never pinned).
  int pinned_workers() const { return pinned_workers_; }

 private:
  void WorkerLoop();
  void RunBatch();

  int pinned_workers_ = 0;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new batch or shutdown
  std::condition_variable done_cv_;   // caller: batch finished
  const std::function<void(size_t)>* body_ = nullptr;
  size_t count_ = 0;
  std::atomic<size_t> next_{0};
  size_t active_ = 0;       // workers still inside the current batch
  uint64_t generation_ = 0;  // bumped per batch so workers never re-run one
  bool stop_ = false;
};

/// Fire-and-forget task queue over dedicated workers (the calling thread
/// never participates — that is the point: the caller stays free to service
/// its own event loop while tasks run). Workers pull the highest-priority
/// queued task (FIFO among equal priorities), concurrently across workers.
/// Tasks must not throw: a task that could fail must capture its own error
/// (the shard pool wraps refreshes in a catch-all and ships the
/// std::exception_ptr through its done queue).
/// Thread-safety: Submit/Drain may be called from any thread. The destructor
/// drains outstanding tasks before joining.
class TaskPool {
 public:
  using Options = ThreadPoolOptions;

  /// At least one worker is always kept, so Submit never runs inline.
  explicit TaskPool(const Options& options);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `task` and returns immediately. Higher `priority` runs first;
  /// ties run in submission order. No preemption: a long low-priority task
  /// already on a worker keeps it, so priority bounds queueing delay, not
  /// latency. The shard pool submits refreshes at minus-the-shard's-row-count
  /// (shortest-job-first) so a cheap refresh never convoys behind big ones.
  void Submit(std::function<void()> task, int64_t priority = 0);

  /// Blocks until every task submitted so far has finished running.
  void Drain();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Workers actually pinned (0 when pin_threads was off or PlanPinning
  /// declined).
  int pinned_workers() const { return pinned_workers_; }

 private:
  void WorkerLoop();

  int pinned_workers_ = 0;

  struct QueuedTask {
    int64_t priority = 0;
    uint64_t seq = 0;  // submission order, the FIFO tie-break
    std::function<void()> task;
  };
  static bool TaskAfter(const QueuedTask& a, const QueuedTask& b);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: task available or shutdown
  std::condition_variable idle_cv_;  // Drain: queue empty and nothing running
  std::vector<QueuedTask> tasks_;    // max-heap: priority, then earliest seq
  uint64_t next_seq_ = 0;
  size_t running_ = 0;  // tasks currently executing on workers
  bool stop_ = false;
};

// Batch-submit helper: evaluates fn(i) for every i in [0, count) on the pool
// (inline, in order, when `pool` is null) and returns the results in index
// order — the ordered fan-out primitive under the measurement broker's
// batches. fn must be safe to call concurrently; each result slot is written
// by exactly one item.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, size_t count, const Fn& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(count);
  if (pool == nullptr || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      out[i] = fn(i);
    }
    return out;
  }
  pool->ParallelFor(count, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace unicorn

#endif  // UNICORN_UTIL_THREAD_POOL_H_
