// Fleet determinism and failure-path coverage: batched-through-fleet ==
// serial row-for-row at 1..4 backends (with and without injected transient
// failures), retries reroute and converge, permanent failures circuit-break
// without losing queued requests, and recorded replay round-trips through
// the persisted measurement table.
#include "unicorn/backend/backend_fleet.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "eval/harness.h"
#include "sysmodel/systems.h"
#include "unicorn/backend/in_process_backend.h"
#include "unicorn/backend/recorded_backend.h"
#include "unicorn/backend/simulated_device_backend.h"
#include "unicorn/measurement_broker.h"

namespace unicorn {
namespace {

struct Scenario {
  std::shared_ptr<SystemModel> model;
  PerformanceTask task;
};

Scenario MakeScenario(uint64_t seed) {
  SystemSpec spec;
  spec.num_events = 8;
  Scenario s;
  s.model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  s.task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), seed);
  return s;
}

std::vector<std::vector<double>> SampleBatch(const PerformanceTask& task, size_t count,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < count; ++i) {
    configs.push_back(task.sample_config(&rng));
  }
  return configs;
}

// A fleet of `n` homogeneous simulated devices: same model, same
// environment, same task seed — rows are identical wherever a request
// lands, which is exactly what the bit-identity guarantee needs.
std::unique_ptr<BackendFleet> MakeDeviceFleet(const Scenario& s, uint64_t task_seed, int n,
                                              double transient_rate, double permanent_rate,
                                              FleetOptions options = {}) {
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  for (int b = 0; b < n; ++b) {
    DeviceProfile profile;
    profile.name = "jetson-" + std::to_string(b);
    profile.seed = 1000 + static_cast<uint64_t>(b);
    profile.transient_failure_rate = transient_rate;
    profile.permanent_failure_rate = permanent_rate;
    backends.push_back(
        MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(), task_seed, std::move(profile)));
  }
  return std::make_unique<BackendFleet>(std::move(backends), options);
}

TEST(BackendFleetTest, DeviceFailureInjectionIsDeterministic) {
  const Scenario s = MakeScenario(11);
  DeviceProfile profile;
  profile.seed = 5;
  profile.transient_failure_rate = 0.4;
  profile.permanent_failure_rate = 0.1;
  SimulatedDeviceBackend a(s.task, profile);
  SimulatedDeviceBackend b(s.task, profile);
  const auto configs = SampleBatch(s.task, 30, 12);
  for (const auto& config : configs) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const MeasureOutcome first = a.Measure(config, attempt);
      const MeasureOutcome second = b.Measure(config, attempt);
      EXPECT_EQ(first.status, second.status);
      EXPECT_EQ(first.row, second.row);
    }
  }
}

TEST(BackendFleetTest, FleetMatchesSerialBrokerRowForRow) {
  const Scenario s = MakeScenario(21);
  const auto configs = SampleBatch(s.task, 40, 22);

  MeasurementBroker serial(s.task);  // pool mode, one thread: the oracle
  const auto reference = serial.MeasureBatch(configs);

  for (int n : {1, 2, 3, 4}) {
    MeasurementBroker broker(s.task, MakeDeviceFleet(s, 21, n, 0.0, 0.0));
    EXPECT_EQ(broker.MeasureBatch(configs), reference) << "backends=" << n;
    const FleetStats stats = broker.fleet_stats();
    EXPECT_EQ(stats.completed, configs.size());
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.retries, 0u);
    ASSERT_EQ(stats.backends.size(), static_cast<size_t>(n));
  }
}

TEST(BackendFleetTest, InProcessBackendsMatchSerialToo) {
  const Scenario s = MakeScenario(31);
  const auto configs = SampleBatch(s.task, 30, 32);
  MeasurementBroker serial(s.task);
  const auto reference = serial.MeasureBatch(configs);

  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  backends.push_back(std::make_unique<InProcessBackend>(s.task, "proc-0", 2));
  backends.push_back(std::make_unique<InProcessBackend>(s.task, "proc-1", 2));
  MeasurementBroker broker(s.task, std::make_unique<BackendFleet>(std::move(backends)));
  EXPECT_EQ(broker.MeasureBatch(configs), reference);
  // Least-loaded routing spreads a 30-request batch over both backends.
  const FleetStats stats = broker.fleet_stats();
  EXPECT_GT(stats.backends[0].dispatched, 0u);
  EXPECT_GT(stats.backends[1].dispatched, 0u);
}

TEST(BackendFleetTest, TransientFailuresRetryRerouteAndStillConverge) {
  const Scenario s = MakeScenario(41);
  const auto configs = SampleBatch(s.task, 60, 42);
  MeasurementBroker serial(s.task);
  const auto reference = serial.MeasureBatch(configs);

  for (int n : {2, 4}) {
    // A 30% transient rate across every device: with max_attempts=6 the
    // chance any of 60 requests exhausts its retries is ~60 * 0.3^6 < 5%,
    // and the seeded draws make the outcome reproducible, not flaky.
    FleetOptions options;
    options.max_attempts = 6;
    MeasurementBroker broker(s.task, MakeDeviceFleet(s, 41, n, 0.3, 0.0, options));
    EXPECT_EQ(broker.MeasureBatch(configs), reference) << "backends=" << n;

    const FleetStats stats = broker.fleet_stats();
    EXPECT_EQ(stats.completed, configs.size());
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_GT(stats.retries, 0u);    // ~30% of attempts fail: retries must show up
    EXPECT_GT(stats.rerouted, 0u);   // the excluded-backend set sends them elsewhere
    EXPECT_EQ(broker.stats().failures, 0u);
    size_t transient_total = 0;
    for (const auto& backend : stats.backends) {
      transient_total += backend.transient_failures;
    }
    EXPECT_EQ(transient_total, stats.retries);
    // Every successful row was measured exactly once; retries are extra
    // attempts on top.
    EXPECT_EQ(stats.TotalMeasured(), configs.size() + stats.retries);
  }
}

TEST(BackendFleetTest, PermanentFailuresCircuitBreakWithoutLosingRequests) {
  const Scenario s = MakeScenario(51);
  const auto configs = SampleBatch(s.task, 40, 52);
  MeasurementBroker serial(s.task);
  const auto reference = serial.MeasureBatch(configs);

  // Backend 0 permanently fails every attempt; 1 and 2 are healthy. A small
  // queue bound forces requests to pile up behind the sick backend so the
  // break actually migrates queued work.
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  for (int b = 0; b < 3; ++b) {
    DeviceProfile profile;
    profile.name = "jetson-" + std::to_string(b);
    profile.seed = 2000 + static_cast<uint64_t>(b);
    profile.permanent_failure_rate = b == 0 ? 1.0 : 0.0;
    backends.push_back(
        MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(), 51, std::move(profile)));
  }
  FleetOptions options;
  options.circuit_break_after = 2;
  options.queue_capacity = 8;
  MeasurementBroker broker(s.task, std::make_unique<BackendFleet>(std::move(backends), options));

  EXPECT_EQ(broker.MeasureBatch(configs), reference);

  const FleetStats stats = broker.fleet_stats();
  EXPECT_EQ(stats.completed, configs.size());  // nothing lost
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.circuit_breaks, 1u);
  EXPECT_TRUE(stats.backends[0].circuit_broken);
  EXPECT_EQ(stats.backends[0].completed, 0u);
  EXPECT_EQ(stats.backends[0].permanent_failures, 2u);  // capped by the breaker
  EXPECT_EQ(stats.backends[0].queue_depth, 0u);         // queue fully migrated
  EXPECT_EQ(stats.backends[1].completed + stats.backends[2].completed, configs.size());
}

TEST(BackendFleetTest, AllBackendsBrokenFailsTheRequestCleanly) {
  const Scenario s = MakeScenario(61);
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  DeviceProfile profile;
  profile.name = "dying";
  profile.seed = 3000;
  profile.permanent_failure_rate = 1.0;
  backends.push_back(
      MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(), 61, std::move(profile)));
  FleetOptions options;
  options.circuit_break_after = 1;
  BackendFleet fleet(std::move(backends), options);

  const auto configs = SampleBatch(s.task, 3, 62);
  for (const auto& config : configs) {
    fleet.Submit(config);
  }
  size_t failures = 0;
  FleetCompletion done;
  while (fleet.WaitCompletion(&done)) {
    EXPECT_NE(done.outcome.status, MeasureStatus::kOk);
    ++failures;
  }
  EXPECT_EQ(failures, configs.size());  // every ticket completes, none hang
  EXPECT_EQ(fleet.Outstanding(), 0u);
  EXPECT_TRUE(fleet.stats().backends[0].circuit_broken);
}

TEST(BackendFleetTest, RecordedBackendReplaysAPersistedTable) {
  const Scenario s = MakeScenario(71);
  const auto configs = SampleBatch(s.task, 25, 72);

  // Session 1: measure live, persist the broker cache.
  const std::string path = ::testing::TempDir() + "fleet_recorded_table.csv";
  MeasurementBroker live(s.task);
  const auto reference = live.MeasureBatch(configs);
  ASSERT_TRUE(live.SaveCache(path));

  // Session 2: a fleet whose only member replays the recording — rows come
  // back bit-identical with zero live measurements.
  RecordedBackend recorded = RecordedBackend::FromFile(path);
  ASSERT_EQ(recorded.size(), configs.size());
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  backends.push_back(std::make_unique<RecordedBackend>(std::move(recorded)));
  MeasurementBroker replay(s.task, std::make_unique<BackendFleet>(std::move(backends)));
  EXPECT_EQ(replay.MeasureBatch(configs), reference);
  EXPECT_EQ(replay.fleet_stats().backends[0].completed, configs.size());
  std::remove(path.c_str());
}

TEST(BackendFleetTest, CapabilityRoutingSendsUnrecordedConfigsToLiveBackends) {
  const Scenario s = MakeScenario(81);
  const auto recorded_configs = SampleBatch(s.task, 15, 82);
  const auto novel_configs = SampleBatch(s.task, 15, 83);

  const std::string path = ::testing::TempDir() + "fleet_capability_table.csv";
  MeasurementBroker live(s.task);
  live.MeasureBatch(recorded_configs);
  ASSERT_TRUE(live.SaveCache(path));

  // Recorded replay + one live device: Supports() keeps unrecorded
  // configurations off the replay backend entirely.
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  backends.push_back(
      std::make_unique<RecordedBackend>(RecordedBackend::FromFile(path, "replay")));
  DeviceProfile profile;
  profile.name = "live";
  profile.seed = 4000;
  backends.push_back(
      MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(), 81, std::move(profile)));
  MeasurementBroker broker(s.task, std::make_unique<BackendFleet>(std::move(backends)));

  std::vector<std::vector<double>> all = recorded_configs;
  all.insert(all.end(), novel_configs.begin(), novel_configs.end());
  MeasurementBroker serial(s.task);
  EXPECT_EQ(broker.MeasureBatch(all), serial.MeasureBatch(all));

  const FleetStats stats = broker.fleet_stats();
  EXPECT_EQ(stats.failed, 0u);
  // Every novel configuration had exactly one eligible backend.
  EXPECT_GE(stats.backends[1].completed, novel_configs.size());
  std::remove(path.c_str());
}

// Environment-aware routing: a tagged request is served only by the
// exactly-matching backend — even when an untagged backend is idle — and a
// request whose environment no backend carries fails with a typed permanent
// failure instead of landing on the wrong hardware.
TEST(BackendFleetTest, EnvironmentAwareRoutingPinsTaggedRequests) {
  const Scenario s = MakeScenario(101);
  const auto configs = SampleBatch(s.task, 12, 102);

  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  DeviceProfile tx2_profile;
  tx2_profile.name = "tx2-dev";
  tx2_profile.seed = 5000;
  backends.push_back(
      MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(), 101, std::move(tx2_profile)));
  DeviceProfile xavier_profile;
  xavier_profile.name = "xavier-dev";
  xavier_profile.seed = 5001;
  backends.push_back(
      MakeDeviceBackend(s.model, Xavier(), DefaultWorkload(), 101, std::move(xavier_profile)));
  // MakeDeviceBackend defaults the routing tag to the Environment name.
  BackendFleet fleet(std::move(backends));
  EXPECT_EQ(fleet.backend(0).environment(), "TX2");
  EXPECT_EQ(fleet.backend(1).environment(), "Xavier");

  for (const auto& config : configs) {
    fleet.Submit(config, "TX2");
  }
  fleet.Submit(configs[0], "Xavier");
  fleet.Submit(configs[0], "TX1");  // no such backend in this fleet

  size_t ok = 0;
  size_t failed = 0;
  FleetCompletion done;
  while (fleet.WaitCompletion(&done)) {
    if (done.outcome.status == MeasureStatus::kOk) {
      ++ok;
    } else {
      ++failed;
      EXPECT_EQ(done.environment, "TX1");
      EXPECT_EQ(done.outcome.status, MeasureStatus::kPermanent);
    }
  }
  EXPECT_EQ(ok, configs.size() + 1);
  EXPECT_EQ(failed, 1u);

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.backends[0].completed, configs.size());  // every TX2 tag
  EXPECT_EQ(stats.backends[1].completed, 1u);              // the Xavier tag
  EXPECT_EQ(stats.backends[0].environment, "TX2");
  EXPECT_EQ(stats.backends[1].environment, "Xavier");
}

TEST(BackendFleetTest, SyncBatchDefersAnOutstandingAsyncBatchsCompletions) {
  // A sync MeasureBatch draining the shared fleet stream must hand back —
  // not swallow — completions that belong to an earlier async batch.
  const Scenario s = MakeScenario(95);
  const auto async_configs = SampleBatch(s.task, 10, 96);
  const auto sync_configs = SampleBatch(s.task, 10, 97);

  MeasurementBroker serial(s.task);
  const auto async_reference = serial.MeasureBatch(async_configs);
  const auto sync_reference = serial.MeasureBatch(sync_configs);

  MeasurementBroker broker(s.task, MakeDeviceFleet(s, 95, 2, 0.0, 0.0));
  const BatchTicket ticket = broker.SubmitBatch(async_configs);
  EXPECT_EQ(broker.MeasureBatch(sync_configs), sync_reference);

  std::vector<std::vector<double>> rows(async_configs.size());
  BrokerCompletion done;
  size_t received = 0;
  while (broker.WaitCompletion(&done)) {
    ASSERT_TRUE(done.ok);
    ASSERT_EQ(done.batch, ticket.id);
    rows[done.index] = done.row;
    ++received;
  }
  EXPECT_EQ(received, async_configs.size());
  EXPECT_EQ(rows, async_reference);
}

TEST(BackendFleetTest, FleetBusyTimeLandsInTheLedger) {
  const Scenario s = MakeScenario(91);
  const auto configs = SampleBatch(s.task, 10, 92);
  MeasurementBroker broker(s.task, MakeDeviceFleet(s, 91, 2, 0.0, 0.0));
  broker.MeasureBatch(configs);
  const FleetStats stats = broker.fleet_stats();
  double busy = 0.0;
  for (const auto& backend : stats.backends) {
    busy += backend.busy_seconds;
  }
  EXPECT_GT(busy, 0.0);
  EXPECT_GT(broker.stats().busy_seconds, 0.0);
  EXPECT_GT(broker.stats().batch_wall_seconds, 0.0);
}

}  // namespace
}  // namespace unicorn
