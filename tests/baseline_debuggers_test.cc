#include <gtest/gtest.h>

#include "baselines/bugdoc.h"
#include "baselines/cbi.h"
#include "baselines/dd.h"
#include "baselines/encore.h"
#include "eval/harness.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"

namespace unicorn {
namespace {

struct Scenario {
  std::shared_ptr<SystemModel> model;
  PerformanceTask task;
  FaultCuration curation;
  Fault fault;
  std::vector<ObjectiveGoal> goals;
};

Scenario MakeScenario(uint64_t seed) {
  Scenario s;
  SystemSpec spec;
  spec.num_events = 8;
  s.model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  Rng rng(seed);
  s.curation = CurateFaults(*s.model, Tx2(), DefaultWorkload(), 1500, &rng, 0.97);
  s.task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), seed + 1);
  for (const auto& f : s.curation.faults) {
    if (!f.root_causes.empty()) {
      s.fault = f;
      break;
    }
  }
  s.goals = GoalsForFault(s.curation, s.fault);
  return s;
}

using DebugFn = BaselineDebugResult (*)(const PerformanceTask&, const std::vector<double>&,
                                        const std::vector<ObjectiveGoal>&,
                                        const BaselineDebugOptions&);

class BaselineSweep : public ::testing::TestWithParam<std::pair<const char*, DebugFn>> {};

TEST_P(BaselineSweep, RespectsBudgetAndImproves) {
  Scenario s = MakeScenario(300);
  ASSERT_FALSE(s.fault.config.empty());
  BaselineDebugOptions options;
  options.sample_budget = 120;
  const auto result = GetParam().second(s.task, s.fault.config, s.goals, options);
  // Budget respected (small slack for the final verification measurement).
  EXPECT_LE(result.measurements_used, options.sample_budget + 2);
  // The proposed fix never makes things worse than the fault itself.
  ASSERT_FALSE(result.fixed_measurement.empty());
  for (const auto& goal : s.goals) {
    EXPECT_LE(result.fixed_measurement[goal.var], s.fault.measurement[goal.var] * 1.05);
  }
}

TEST_P(BaselineSweep, RootCausesAreOptionVars) {
  Scenario s = MakeScenario(301);
  ASSERT_FALSE(s.fault.config.empty());
  BaselineDebugOptions options;
  options.sample_budget = 100;
  const auto result = GetParam().second(s.task, s.fault.config, s.goals, options);
  for (size_t cause : result.predicted_root_causes) {
    EXPECT_EQ(s.model->variables()[cause].role, VarRole::kOption);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineSweep,
    ::testing::Values(std::make_pair("cbi", &CbiDebug), std::make_pair("dd", &DdDebug),
                      std::make_pair("encore", &EncoreDebug),
                      std::make_pair("bugdoc", &BugDocDebug)),
    [](const ::testing::TestParamInfo<std::pair<const char*, DebugFn>>& info) {
      return info.param.first;
    });

TEST(DdTest, MinimalDiffFixes) {
  Scenario s = MakeScenario(302);
  ASSERT_FALSE(s.fault.config.empty());
  BaselineDebugOptions options;
  options.sample_budget = 150;
  const auto result = DdDebug(s.task, s.fault.config, s.goals, options);
  if (result.fixed) {
    // The returned fix with only the minimal diffs applied must pass.
    bool met = true;
    for (const auto& goal : s.goals) {
      met &= result.fixed_measurement[goal.var] <= goal.threshold;
    }
    EXPECT_TRUE(met);
    // Predicted causes = the applied diffs.
    EXPECT_FALSE(result.predicted_root_causes.empty());
  }
}

TEST(CbiTest, HandlesNoFailuresGracefully) {
  // Goals so loose that nothing fails: CBI should not crash and should
  // return the fault config (or better).
  Scenario s = MakeScenario(303);
  ASSERT_FALSE(s.fault.config.empty());
  std::vector<ObjectiveGoal> loose;
  for (const auto& g : s.goals) {
    loose.push_back({g.var, g.threshold * 1000.0});
  }
  BaselineDebugOptions options;
  options.sample_budget = 40;
  const auto result = CbiDebug(s.task, s.fault.config, loose, options);
  EXPECT_TRUE(result.fixed);
}

TEST(BugDocTest, ProducesExplanation) {
  Scenario s = MakeScenario(304);
  ASSERT_FALSE(s.fault.config.empty());
  BaselineDebugOptions options;
  options.sample_budget = 120;
  const auto result = BugDocDebug(s.task, s.fault.config, s.goals, options);
  // BugDoc explains via the decision path: for a real fault with failing
  // samples in the pool the path is non-empty.
  EXPECT_FALSE(result.predicted_root_causes.empty());
}

}  // namespace
}  // namespace unicorn
