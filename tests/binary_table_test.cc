// The compact binary MeasurementTable format and its consumers: lossless
// CSV <-> binary round trips, strict header/truncation rejection, zero-copy
// views, engine warm starts, and CICache snapshot persistence.
#include "unicorn/backend/binary_table.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stats/ci_cache.h"
#include "stats/table.h"
#include "unicorn/backend/measurement_table.h"
#include "unicorn/model_learner.h"

namespace unicorn {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + name; }

// A table with bit-pattern-hostile doubles (non-terminating binary fractions,
// negative zero, extreme exponents) and mixed provenance strings.
MeasurementTable AwkwardTable() {
  MeasurementTable table;
  table.num_options = 2;
  table.num_vars = 4;
  table.entries = {
      {{0.1, 1.0 / 3.0}, {0.1, 1.0 / 3.0, -0.0, 1e-300}, "source-a"},
      {{2.0, 0.2}, {2.0, 0.2, 1e300, -7.625}, ""},
      {{-1.5, 3.0}, {-1.5, 3.0, 5e-324, 0.30000000000000004}, "target,with\"quotes\""},
  };
  return table;
}

void ExpectTablesBitIdentical(const MeasurementTable& a, const MeasurementTable& b) {
  ASSERT_EQ(a.num_options, b.num_options);
  ASSERT_EQ(a.num_vars, b.num_vars);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t e = 0; e < a.entries.size(); ++e) {
    ASSERT_EQ(a.entries[e].config.size(), b.entries[e].config.size());
    ASSERT_EQ(a.entries[e].row.size(), b.entries[e].row.size());
    for (size_t i = 0; i < a.entries[e].config.size(); ++i) {
      // EXPECT_EQ would call -0.0 == 0.0 equal; compare the bit patterns.
      EXPECT_EQ(std::signbit(a.entries[e].config[i]), std::signbit(b.entries[e].config[i]));
      EXPECT_EQ(a.entries[e].config[i], b.entries[e].config[i]);
    }
    for (size_t i = 0; i < a.entries[e].row.size(); ++i) {
      EXPECT_EQ(std::signbit(a.entries[e].row[i]), std::signbit(b.entries[e].row[i]));
      EXPECT_EQ(a.entries[e].row[i], b.entries[e].row[i]);
    }
    EXPECT_EQ(a.entries[e].provenance, b.entries[e].provenance);
  }
}

TEST(BinaryTable, RoundTripsBitExactly) {
  const MeasurementTable table = AwkwardTable();
  const std::string path = TempPath("bt_roundtrip.bin");
  ASSERT_TRUE(SaveMeasurementTableBinary(path, table));
  EXPECT_TRUE(IsBinaryMeasurementTable(path));

  MeasurementTable loaded;
  ASSERT_TRUE(LoadMeasurementTableBinary(path, &loaded));
  ExpectTablesBitIdentical(table, loaded);

  // The generic loader sniffs the magic and accepts the binary file too.
  MeasurementTable sniffed;
  ASSERT_TRUE(LoadMeasurementTable(path, &sniffed));
  ExpectTablesBitIdentical(table, sniffed);
}

TEST(BinaryTable, CsvBinaryCsvIsLossless) {
  const MeasurementTable table = AwkwardTable();
  const std::string csv1 = TempPath("bt_lossless_1.csv");
  const std::string bin = TempPath("bt_lossless.bin");
  const std::string csv2 = TempPath("bt_lossless_2.csv");

  ASSERT_TRUE(SaveMeasurementTable(csv1, table));
  EXPECT_FALSE(IsBinaryMeasurementTable(csv1));
  MeasurementTable from_csv;
  ASSERT_TRUE(LoadMeasurementTable(csv1, &from_csv));
  ASSERT_TRUE(SaveMeasurementTableBinary(bin, from_csv));
  MeasurementTable from_bin;
  ASSERT_TRUE(LoadMeasurementTable(bin, &from_bin));
  ASSERT_TRUE(SaveMeasurementTable(csv2, from_bin));
  MeasurementTable final_table;
  ASSERT_TRUE(LoadMeasurementTable(csv2, &final_table));
  ExpectTablesBitIdentical(table, final_table);
}

TEST(BinaryTable, V1CsvConvertsToBinary) {
  // v1 header, no provenance column. The binary file must load back with
  // the same payload and empty provenance.
  const std::string csv = TempPath("bt_v1.csv");
  {
    std::ofstream out(csv);
    out << "unicorn-measurement-table-v1,1,2\n";
    out << "0.5,0.5,12.25\n";
    out << "1.5,1.5,-3.75\n";
  }
  MeasurementTable table;
  ASSERT_TRUE(LoadMeasurementTable(csv, &table));
  ASSERT_EQ(table.entries.size(), 2u);
  const std::string bin = TempPath("bt_v1.bin");
  ASSERT_TRUE(SaveMeasurementTableBinary(bin, table));
  MeasurementTable loaded;
  ASSERT_TRUE(LoadMeasurementTable(bin, &loaded));
  ExpectTablesBitIdentical(table, loaded);
  EXPECT_EQ(loaded.entries[0].provenance, "");
}

TEST(BinaryTable, ViewReadsZeroCopy) {
  const MeasurementTable table = AwkwardTable();
  const std::string path = TempPath("bt_view.bin");
  ASSERT_TRUE(SaveMeasurementTableBinary(path, table));

  BinaryTableView view;
  ASSERT_TRUE(view.Open(path));
  EXPECT_EQ(view.num_options(), table.num_options);
  EXPECT_EQ(view.num_vars(), table.num_vars);
  EXPECT_EQ(view.num_rows(), table.entries.size());
  for (size_t r = 0; r < view.num_rows(); ++r) {
    for (size_t o = 0; o < view.num_options(); ++o) {
      EXPECT_EQ(view.ConfigCol(o)[r], table.entries[r].config[o]);
    }
    for (size_t v = 0; v < view.num_vars(); ++v) {
      EXPECT_EQ(view.RowCol(v)[r], table.entries[r].row[v]);
    }
    EXPECT_EQ(view.Provenance(r), table.entries[r].provenance);
    std::vector<double> row;
    view.ReadRow(r, &row);
    ASSERT_EQ(row.size(), table.num_vars);
    for (size_t v = 0; v < row.size(); ++v) {
      EXPECT_EQ(row[v], table.entries[r].row[v]);
    }
  }
}

TEST(BinaryTable, RejectsCorruptHeaders) {
  const MeasurementTable table = AwkwardTable();
  const std::string path = TempPath("bt_good.bin");
  ASSERT_TRUE(SaveMeasurementTableBinary(path, table));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_GE(bytes.size(), size_t{64});

  const auto write_and_reject = [&](const std::string& mutated, const char* what) {
    const std::string bad = TempPath("bt_bad.bin");
    std::ofstream out(bad, std::ios::binary);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    MeasurementTable t;
    EXPECT_FALSE(LoadMeasurementTableBinary(bad, &t)) << what;
    BinaryTableView view;
    EXPECT_FALSE(view.Open(bad)) << what;
  };

  {
    std::string bad = bytes;
    bad[0] = 'X';  // wrong magic
    write_and_reject(bad, "magic");
  }
  {
    // Byte-swapped endian marker: a big-endian writer's file.
    std::string bad = bytes;
    std::swap(bad[8], bad[11]);
    std::swap(bad[9], bad[10]);
    write_and_reject(bad, "endianness");
  }
  {
    std::string bad = bytes;
    bad[40] = 0x10;  // payload_offset != 64
    write_and_reject(bad, "payload offset");
  }
  {
    std::string bad = bytes;
    bad[16] = 0;  // num_options = 0
    write_and_reject(bad, "zero options");
  }
  {
    std::string bad = bytes;
    bad[32] = static_cast<char>(0xFF);  // num_rows inflated past the file
    write_and_reject(bad, "row count");
  }
}

TEST(BinaryTable, RejectsTruncation) {
  const MeasurementTable table = AwkwardTable();
  const std::string path = TempPath("bt_trunc_src.bin");
  ASSERT_TRUE(SaveMeasurementTableBinary(path, table));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  // Cut inside the header, the payload, the offsets, and the final blob —
  // every prefix must be rejected (the format has no valid proper prefix
  // with the same header, because prov_bytes pins the exact file size).
  for (size_t cut : {size_t{10}, size_t{63}, size_t{64}, bytes.size() / 2, bytes.size() - 1}) {
    const std::string bad_path = TempPath("bt_trunc.bin");
    std::ofstream out(bad_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    MeasurementTable t;
    EXPECT_FALSE(LoadMeasurementTableBinary(bad_path, &t)) << "cut=" << cut;
    BinaryTableView view;
    EXPECT_FALSE(view.Open(bad_path)) << "cut=" << cut;
  }
  // Trailing garbage is a size mismatch too.
  const std::string padded = TempPath("bt_padded.bin");
  std::ofstream out(padded, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.put('\0');
  out.close();
  MeasurementTable t;
  EXPECT_FALSE(LoadMeasurementTableBinary(padded, &t));
}

std::vector<Variable> EngineVariables() {
  return {
      {"o0", VarType::kDiscrete, VarRole::kOption, {0, 1, 2}},
      {"o1", VarType::kDiscrete, VarRole::kOption, {0, 1}},
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
      {"y", VarType::kContinuous, VarRole::kObjective, {}},
  };
}

MeasurementTable EngineSeedTable() {
  MeasurementTable table;
  table.num_options = 2;
  table.num_vars = 4;
  for (int r = 0; r < 40; ++r) {
    MeasurementTable::Entry entry;
    const double o0 = r % 3;
    const double o1 = r % 2;
    entry.config = {o0, o1};
    entry.row = {o0, o1, 0.25 * r + 0.1 * o0, 1.75 * o0 - o1 + 0.01 * r};
    entry.provenance = "source-env";
    table.entries.push_back(entry);
  }
  return table;
}

TEST(BinaryTable, SeedFromFileBinaryMatchesCsv) {
  const MeasurementTable table = EngineSeedTable();
  const std::string csv = TempPath("bt_seed.csv");
  const std::string bin = TempPath("bt_seed.bin");
  ASSERT_TRUE(SaveMeasurementTable(csv, table));
  ASSERT_TRUE(SaveMeasurementTableBinary(bin, table));

  CausalModelEngine from_csv(EngineVariables());
  CausalModelEngine from_bin(EngineVariables());
  ASSERT_EQ(from_csv.SeedFromFile(csv), table.entries.size());
  ASSERT_EQ(from_bin.SeedFromFile(bin), table.entries.size());

  // The zero-copy path must absorb bit-identical rows in the same order:
  // the chained fingerprints agree iff every row bit-matches.
  EXPECT_EQ(from_csv.data_fingerprint(), from_bin.data_fingerprint());
  EXPECT_EQ(from_bin.ProvenanceRows(RowProvenance::kSource), table.entries.size());
}

TEST(BinaryTable, SeedFromFileRejectsWrongShape) {
  MeasurementTable table = EngineSeedTable();
  table.num_options = 1;  // same width, different task
  table.num_vars = 4;
  for (auto& entry : table.entries) {
    entry.config.resize(1);
  }
  const std::string bin = TempPath("bt_seed_badshape.bin");
  ASSERT_TRUE(SaveMeasurementTableBinary(bin, table));
  CausalModelEngine engine(EngineVariables());
  EXPECT_EQ(engine.SeedFromFile(bin), 0u);
  EXPECT_EQ(engine.data().NumRows(), 0u);
}

TEST(CICachePersistence, SaveLoadRoundTrip) {
  CICache cache;
  const uint64_t tag = 0xfeedbeef12345678ULL;
  const auto k1 = CICache::MakeKey(3, 7, {1, 2}, 500, tag);
  const auto k2 = CICache::MakeKey(0, 4, {}, 500, tag);
  const auto k3 = CICache::MakeKey(2, 9, {0, 1, 3, 5}, 750, tag);
  cache.Store(k1, 0.125, 1);
  cache.Store(k2, 0.875, 2);
  cache.Store(k3, 1.0, 1);

  const std::string path = TempPath("ci_cache_snapshot.bin");
  ASSERT_TRUE(cache.SaveTo(path));

  CICache restored;
  EXPECT_EQ(restored.LoadFrom(path, 9), 3);
  EXPECT_EQ(restored.size(), size_t{3});
  auto h1 = restored.Lookup(k1);
  auto h2 = restored.Lookup(k2);
  auto h3 = restored.Lookup(k3);
  ASSERT_TRUE(h1 && h2 && h3);
  EXPECT_EQ(*h1, 0.125);
  EXPECT_EQ(*h2, 0.875);
  EXPECT_EQ(*h3, 1.0);
  // Loaded entries belong to the loading shard: a different shard's lookup
  // counts as cross-shard.
  auto hit = restored.LookupFrom(k1, 4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cross_shard);
  auto same = restored.LookupFrom(k2, 9);
  ASSERT_TRUE(same.has_value());
  EXPECT_FALSE(same->cross_shard);
}

TEST(CICachePersistence, RejectsForeignAndTruncatedFiles) {
  CICache cache;
  EXPECT_EQ(cache.LoadFrom(TempPath("ci_cache_missing.bin")), -1);

  const std::string garbage = TempPath("ci_cache_garbage.bin");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not a cache snapshot";
  }
  EXPECT_EQ(cache.LoadFrom(garbage), -1);
  EXPECT_EQ(cache.size(), size_t{0});

  // A valid snapshot cut mid-record must come back -1, not a short count.
  CICache full;
  full.Store(CICache::MakeKey(1, 2, {3}, 100, 42), 0.5);
  full.Store(CICache::MakeKey(4, 5, {6}, 100, 42), 0.25);
  const std::string path = TempPath("ci_cache_trunc_src.bin");
  ASSERT_TRUE(full.SaveTo(path));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  const std::string trunc = TempPath("ci_cache_trunc.bin");
  {
    std::ofstream out(trunc, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  }
  CICache target;
  EXPECT_EQ(target.LoadFrom(trunc), -1);
}

TEST(DataTableReserve, HintSticksAndPropagates) {
  std::vector<Variable> vars = EngineVariables();
  DataTable t(vars);
  EXPECT_EQ(t.ReservedRows(), size_t{0});
  t.Reserve(128);
  EXPECT_EQ(t.ReservedRows(), size_t{128});
  t.Reserve(64);  // shrinking hints are ignored
  EXPECT_EQ(t.ReservedRows(), size_t{128});
  for (int r = 0; r < 10; ++r) {
    t.AddRow({0, 1, 2.5, 3.5});
  }
  const DataTable sel_vars = t.SelectVars({0, 2});
  EXPECT_EQ(sel_vars.ReservedRows(), size_t{128});
  const DataTable sel_rows = t.SelectRows({0, 2, 4});
  EXPECT_EQ(sel_rows.ReservedRows(), size_t{128});
}

// The streaming writer is byte-for-byte the same format as the entry-vector
// saver: same payload, same provenance blob, loadable either way.
TEST(BinaryTableWriter, MatchesEntrySaverAndRoundTrips) {
  const MeasurementTable table = AwkwardTable();
  const std::string saver_path = TempPath("btw_saver.bin");
  const std::string writer_path = TempPath("btw_writer.bin");
  ASSERT_TRUE(SaveMeasurementTableBinary(saver_path, table));

  BinaryTableWriter writer(table.num_options, table.num_vars);
  for (const auto& entry : table.entries) {
    ASSERT_TRUE(writer.AddRow(entry.config, entry.row, entry.provenance));
  }
  EXPECT_EQ(writer.num_rows(), table.entries.size());
  ASSERT_TRUE(writer.WriteFile(writer_path));

  std::ifstream a(saver_path, std::ios::binary);
  std::ifstream b(writer_path, std::ios::binary);
  const std::string saver_bytes((std::istreambuf_iterator<char>(a)),
                                std::istreambuf_iterator<char>());
  const std::string writer_bytes((std::istreambuf_iterator<char>(b)),
                                 std::istreambuf_iterator<char>());
  EXPECT_EQ(writer_bytes, saver_bytes);

  MeasurementTable loaded;
  ASSERT_TRUE(LoadMeasurementTable(writer_path, &loaded));
  ExpectTablesBitIdentical(loaded, table);

  // Shape violations are reported, not absorbed.
  EXPECT_FALSE(writer.AddRow({1.0}, table.entries[0].row));  // config too narrow
  EXPECT_FALSE(writer.AddRow(table.entries[0].config, {1.0}));  // row too narrow
  EXPECT_EQ(writer.num_rows(), table.entries.size());
  BinaryTableWriter degenerate(3, 2);  // num_vars < num_options: invalid shape
  EXPECT_FALSE(degenerate.WriteFile(TempPath("btw_bad.bin")));
  std::remove(saver_path.c_str());
  std::remove(writer_path.c_str());
}

// Scaled-down cousin of the bench's >10^6-row ingest stress: a 50k-row table
// streams through BinaryTableWriter, opens as a zero-copy view, and seeds an
// engine with every row intact.
TEST(BinaryTableWriter, FiftyThousandRowStreamSeedsEngine) {
  constexpr size_t kRows = 50000;
  std::vector<Variable> variables;
  for (int i = 0; i < 2; ++i) {
    Variable v;
    v.name = "opt" + std::to_string(i);
    v.role = VarRole::kOption;
    v.domain = {0.0, 1.0};
    variables.push_back(v);
  }
  for (int i = 0; i < 3; ++i) {
    Variable v;
    v.name = "ev" + std::to_string(i);
    variables.push_back(v);
  }
  const std::string path = TempPath("btw_stress.bin");
  BinaryTableWriter writer(2, variables.size());
  std::vector<double> config(2), row(variables.size());
  for (size_t i = 0; i < kRows; ++i) {
    // Deterministic, bit-pattern-varied payload without an RNG dependency.
    config[0] = static_cast<double>(i) / kRows;
    config[1] = static_cast<double>(i % 97) / 97.0;
    row[0] = config[0];
    row[1] = config[1];
    row[2] = config[0] + 0.5 * config[1];
    row[3] = static_cast<double>(i) * 1e-9;
    row[4] = (i % 2 == 0) ? -0.0 : 1e300;
    ASSERT_TRUE(writer.AddRow(config, row));
  }
  ASSERT_TRUE(writer.WriteFile(path));

  BinaryTableView view;
  ASSERT_TRUE(view.Open(path));
  ASSERT_EQ(view.num_rows(), kRows);
  // Spot-check the column-major payload end to end.
  EXPECT_EQ(view.RowCol(3)[kRows - 1], static_cast<double>(kRows - 1) * 1e-9);
  EXPECT_TRUE(std::signbit(view.RowCol(4)[0]));

  CausalModelEngine engine(variables);
  EXPECT_EQ(engine.SeedFromFile(path), kRows);
  EXPECT_EQ(engine.data().NumRows(), kRows);
  EXPECT_EQ(engine.ProvenanceRows(RowProvenance::kSource), kRows);
  std::remove(path.c_str());
}

TEST(EngineReserve, CoversProvenanceVector) {
  CausalModelEngine engine(EngineVariables());
  engine.Reserve(256);
  for (int r = 0; r < 20; ++r) {
    engine.AddRow({0, 1, 0.5 * r, 1.0 * r}, RowProvenance::kTarget);
  }
  EXPECT_EQ(engine.data().ReservedRows(), size_t{256});
  EXPECT_EQ(engine.ProvenanceRows(RowProvenance::kTarget), size_t{20});
}

}  // namespace
}  // namespace unicorn
