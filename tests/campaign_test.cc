// Campaign-layer behavior: batched measurement is row-for-row equivalent to
// serial driving of the same policies, and several policies can share one
// engine + measurement cache.
#include "unicorn/campaign.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/debugger.h"
#include "unicorn/optimizer.h"

namespace unicorn {
namespace {

struct Scenario {
  std::shared_ptr<SystemModel> model;
  PerformanceTask task;
  FaultCuration curation;
};

Scenario MakeScenario(SystemId id, uint64_t seed, size_t samples = 1200) {
  Scenario s;
  SystemSpec spec;
  spec.num_events = 10;
  s.model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  Rng rng(seed);
  s.curation = CurateFaults(*s.model, Tx2(), DefaultWorkload(), samples, &rng, 0.97);
  s.task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), seed + 1);
  return s;
}

DebugOptions FastDebugOptions() {
  DebugOptions options;
  options.initial_samples = 20;
  options.max_iterations = 12;
  options.stall_termination = 20;
  options.repairs_per_iteration = 3;  // batches bigger than one repair
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 16;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 25;
  return options;
}

const Fault* PickFault(const FaultCuration& curation, size_t skip = 0) {
  size_t seen = 0;
  for (const auto& f : curation.faults) {
    if (!f.root_causes.empty()) {
      if (seen == skip) {
        return &f;
      }
      ++seen;
    }
  }
  return nullptr;
}

// The debugger-equivalence guarantee: with `repairs_per_iteration` repairs
// measured as one broker batch, a threads=4 run is row-for-row identical to
// the serial (threads=1) run — measurement is pure per configuration, so
// fan-out order cannot leak into the result.
TEST(CampaignTest, DebuggerBatchedMatchesSerialRowForRow) {
  Scenario s = MakeScenario(SystemId::kXception, 300);
  const Fault* fault = PickFault(s.curation);
  ASSERT_NE(fault, nullptr);
  const auto goals = GoalsForFault(s.curation, *fault);

  auto run = [&](int broker_threads) {
    DebugOptions options = FastDebugOptions();
    options.broker.num_threads = broker_threads;
    UnicornDebugger debugger(s.task, options);
    return debugger.Debug(fault->config, goals);
  };
  const DebugResult serial = run(1);
  const DebugResult batched = run(4);

  EXPECT_EQ(batched.fixed, serial.fixed);
  EXPECT_EQ(batched.measurements_used, serial.measurements_used);
  EXPECT_EQ(batched.fixed_config, serial.fixed_config);
  EXPECT_EQ(batched.fixed_measurement, serial.fixed_measurement);
  EXPECT_EQ(batched.objective_trajectory, serial.objective_trajectory);
  EXPECT_EQ(batched.selected_options, serial.selected_options);
  EXPECT_EQ(batched.predicted_root_causes, serial.predicted_root_causes);
  EXPECT_EQ(batched.tests_per_iteration, serial.tests_per_iteration);
  EXPECT_TRUE(batched.final_graph == serial.final_graph);
}

TEST(CampaignTest, OptimizerBatchedMatchesSerial) {
  Scenario s = MakeScenario(SystemId::kBert, 301);
  const size_t objective = s.model->ObjectiveIndices()[0];

  auto run = [&](int broker_threads) {
    OptimizeOptions options;
    options.initial_samples = 20;
    options.max_iterations = 25;
    options.relearn_every = 10;
    options.model.fci.skeleton.max_cond_size = 1;
    options.model.entropic.latent.restarts = 1;
    options.broker.num_threads = broker_threads;
    UnicornOptimizer optimizer(s.task, options);
    return optimizer.Minimize(objective);
  };
  const OptimizeResult serial = run(1);
  const OptimizeResult batched = run(4);

  EXPECT_EQ(batched.best_config, serial.best_config);
  EXPECT_EQ(batched.best_value, serial.best_value);
  EXPECT_EQ(batched.best_trajectory, serial.best_trajectory);
  EXPECT_EQ(batched.evaluated, serial.evaluated);
  EXPECT_EQ(batched.measurements_used, serial.measurements_used);
}

// Two faults debugged concurrently against one shared engine and one shared
// measurement cache: every row either policy measures lands in the one
// table both models learn from, and the second policy's bootstrap (same
// sampling seed) is served entirely from the broker cache.
TEST(CampaignTest, MultiFaultCampaignSharesEngineAndCache) {
  Scenario s = MakeScenario(SystemId::kXception, 302);
  const Fault* fault_a = PickFault(s.curation, 0);
  const Fault* fault_b = PickFault(s.curation, 1);
  ASSERT_NE(fault_a, nullptr);
  if (fault_b == nullptr) {
    fault_b = fault_a;  // one curated fault is enough: dedup still kicks in
  }

  DebugOptions options = FastDebugOptions();
  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.engine = options.engine;
  campaign.seed = options.seed;
  campaign.broker.num_threads = 4;

  CampaignRunner runner(s.task, campaign);
  DebugPolicy policy_a(options, fault_a->config, GoalsForFault(s.curation, *fault_a));
  DebugPolicy policy_b(options, fault_b->config, GoalsForFault(s.curation, *fault_b));
  runner.Run({&policy_a, &policy_b});

  const DebugResult& a = policy_a.result();
  const DebugResult& b = policy_b.result();
  ASSERT_FALSE(a.fixed_config.empty());
  ASSERT_FALSE(b.fixed_config.empty());
  // Shared table: exactly the rows the two policies accepted, nothing else.
  EXPECT_EQ(runner.engine().data().NumRows(), a.measurements_used + b.measurements_used);
  // Shared measurement cache: both policies draw bootstrap samples with the
  // same seed, so the second bootstrap is all cache hits.
  EXPECT_GE(runner.broker().stats().cache_hits, options.initial_samples);
  // One engine served every refresh either policy requested (each policy
  // snapshots the shared stats when it finishes, so both see a prefix of
  // the same refresh history).
  const size_t total_refreshes = runner.engine().stats().refreshes;
  EXPECT_GT(total_refreshes, 0u);
  EXPECT_LE(a.engine_stats.refreshes, total_refreshes);
  EXPECT_LE(b.engine_stats.refreshes, total_refreshes);
}

// A debugging policy and an optimization policy sharing one campaign: the
// multi-objective/transfer shape from the issue — different reasoning loops,
// one measurement table, one broker.
TEST(CampaignTest, MixedDebugAndOptimizePoliciesShareOneCampaign) {
  Scenario s = MakeScenario(SystemId::kXception, 303);
  const Fault* fault = PickFault(s.curation);
  ASSERT_NE(fault, nullptr);

  DebugOptions debug_options = FastDebugOptions();
  debug_options.max_iterations = 8;

  OptimizeOptions optimize_options;
  optimize_options.initial_samples = 10;
  optimize_options.max_iterations = 15;
  optimize_options.relearn_every = 5;
  optimize_options.model = debug_options.model;

  CampaignOptions campaign;
  campaign.model = debug_options.model;
  campaign.broker.num_threads = 4;

  CampaignRunner runner(s.task, campaign);
  DebugPolicy debug_policy(debug_options, fault->config, GoalsForFault(s.curation, *fault));
  OptimizePolicy optimize_policy(optimize_options, {s.model->ObjectiveIndices()[0]});
  runner.Run({&debug_policy, &optimize_policy});

  EXPECT_FALSE(debug_policy.result().fixed_config.empty());
  EXPECT_EQ(optimize_policy.result().measurements_used,
            optimize_options.initial_samples + optimize_options.max_iterations);
  EXPECT_EQ(optimize_policy.result().best_trajectory.size(),
            optimize_policy.result().measurements_used);
  EXPECT_EQ(runner.engine().data().NumRows(),
            debug_policy.result().measurements_used +
                optimize_policy.result().measurements_used);
}

// With a single policy the async runner degenerates to the same
// refresh/propose/absorb sequence as the barrier loop (one batch in flight
// at a time, same per-round refresh seeds), so the results must be
// bit-identical — the async plumbing cannot leak into the reasoning.
TEST(CampaignTest, AsyncSinglePolicyMatchesSyncBitForBit) {
  Scenario s = MakeScenario(SystemId::kXception, 304);
  const Fault* fault = PickFault(s.curation);
  ASSERT_NE(fault, nullptr);
  const auto goals = GoalsForFault(s.curation, *fault);
  const DebugOptions options = FastDebugOptions();

  auto run = [&](bool async) {
    CampaignOptions campaign;
    campaign.model = options.model;
    campaign.engine = options.engine;
    campaign.seed = options.seed;
    CampaignRunner runner(s.task, campaign);
    DebugPolicy policy(options, fault->config, goals);
    if (async) {
      runner.RunAsync({&policy});
    } else {
      runner.Run({&policy});
    }
    return policy.result();
  };
  const DebugResult sync_result = run(false);
  const DebugResult async_result = run(true);

  EXPECT_EQ(async_result.fixed, sync_result.fixed);
  EXPECT_EQ(async_result.measurements_used, sync_result.measurements_used);
  EXPECT_EQ(async_result.fixed_config, sync_result.fixed_config);
  EXPECT_EQ(async_result.fixed_measurement, sync_result.fixed_measurement);
  EXPECT_EQ(async_result.objective_trajectory, sync_result.objective_trajectory);
  EXPECT_EQ(async_result.predicted_root_causes, sync_result.predicted_root_causes);
  EXPECT_EQ(async_result.tests_per_iteration, sync_result.tests_per_iteration);
  EXPECT_TRUE(async_result.final_graph == sync_result.final_graph);
}

// The full acceptance stack at once: an async campaign over a fleet of
// homogeneous simulated Jetson devices with injected transient failures
// still reproduces the serial single-broker run row-for-row, while the
// fleet ledger shows the retries really happened.
TEST(CampaignTest, AsyncFleetCampaignWithFailuresMatchesSerial) {
  Scenario s = MakeScenario(SystemId::kXception, 305);
  const Fault* fault = PickFault(s.curation);
  ASSERT_NE(fault, nullptr);
  const auto goals = GoalsForFault(s.curation, *fault);
  const DebugOptions options = FastDebugOptions();

  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.engine = options.engine;
  campaign.seed = options.seed;

  // Serial oracle: pool mode, one thread.
  CampaignRunner serial_runner(s.task, campaign);
  DebugPolicy serial_policy(options, fault->config, goals);
  serial_runner.Run({&serial_policy});

  // Fleet: three devices, same model/environment/task seed as s.task (built
  // with seed 305 + 1 in MakeScenario), 25% transient failure rate.
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  for (int b = 0; b < 3; ++b) {
    DeviceProfile profile;
    profile.name = "jetson-" + std::to_string(b);
    profile.seed = 500 + static_cast<uint64_t>(b);
    profile.transient_failure_rate = 0.25;
    backends.push_back(
        MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(), 306, std::move(profile)));
  }
  FleetOptions fleet_options;
  fleet_options.max_attempts = 8;
  CampaignRunner fleet_runner(
      s.task, campaign, std::make_unique<BackendFleet>(std::move(backends), fleet_options));
  DebugPolicy fleet_policy(options, fault->config, goals);
  fleet_runner.RunAsync({&fleet_policy});

  const DebugResult& serial = serial_policy.result();
  const DebugResult& fleet = fleet_policy.result();
  EXPECT_EQ(fleet.fixed, serial.fixed);
  EXPECT_EQ(fleet.measurements_used, serial.measurements_used);
  EXPECT_EQ(fleet.fixed_config, serial.fixed_config);
  EXPECT_EQ(fleet.fixed_measurement, serial.fixed_measurement);
  EXPECT_EQ(fleet.objective_trajectory, serial.objective_trajectory);
  EXPECT_TRUE(fleet.final_graph == serial.final_graph);

  const FleetStats stats = fleet_runner.broker().fleet_stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.retries, 0u);  // the failures were real, and absorbed
  EXPECT_EQ(stats.completed + fleet_runner.broker().stats().cache_hits,
            fleet_runner.broker().stats().requests);
}

// Two policies pipelined asynchronously against one shared engine: both
// finish, and the shared table holds exactly the rows the policies accepted.
TEST(CampaignTest, AsyncMultiPolicyCampaignCompletes) {
  Scenario s = MakeScenario(SystemId::kXception, 307);
  const Fault* fault_a = PickFault(s.curation, 0);
  const Fault* fault_b = PickFault(s.curation, 1);
  ASSERT_NE(fault_a, nullptr);
  if (fault_b == nullptr) {
    fault_b = fault_a;
  }

  DebugOptions options = FastDebugOptions();
  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.engine = options.engine;
  campaign.seed = options.seed;

  CampaignRunner runner(s.task, campaign);
  DebugPolicy policy_a(options, fault_a->config, GoalsForFault(s.curation, *fault_a));
  DebugPolicy policy_b(options, fault_b->config, GoalsForFault(s.curation, *fault_b));
  runner.RunAsync({&policy_a, &policy_b});

  ASSERT_FALSE(policy_a.result().fixed_config.empty());
  ASSERT_FALSE(policy_b.result().fixed_config.empty());
  EXPECT_EQ(runner.engine().data().NumRows(),
            policy_a.result().measurements_used + policy_b.result().measurements_used);
}

// Distinct objective groups isolate policies completely: a policy debugged
// in its own shard next to an unrelated co-policy is bit-identical to the
// same policy run alone — in the pre-sharding single-engine campaign the
// co-policy's rows would have leaked into the shared table and changed the
// model.
TEST(CampaignTest, DistinctGroupsIsolatePoliciesBitForBit) {
  Scenario s = MakeScenario(SystemId::kXception, 308);
  const Fault* fault_a = PickFault(s.curation, 0);
  const Fault* fault_b = PickFault(s.curation, 1);
  ASSERT_NE(fault_a, nullptr);
  if (fault_b == nullptr) {
    fault_b = fault_a;
  }
  const DebugOptions options = FastDebugOptions();
  const auto goals_a = GoalsForFault(s.curation, *fault_a);

  CampaignRunner solo_runner(s.task, ToCampaignOptions(options));
  DebugPolicy solo(options, fault_a->config, goals_a);
  solo_runner.Run({&solo});

  CampaignOptions campaign = ToCampaignOptions(options);
  campaign.refresh_threads = 4;
  CampaignRunner runner(s.task, campaign);
  DebugPolicy policy_a(options, fault_a->config, goals_a);
  DebugPolicy policy_b(options, fault_b->config, GoalsForFault(s.curation, *fault_b));
  runner.RunGrouped({GroupedPolicy{&policy_a, "fault-a"}, GroupedPolicy{&policy_b, "fault-b"}});

  const DebugResult& isolated = policy_a.result();
  const DebugResult& alone = solo.result();
  EXPECT_EQ(isolated.fixed, alone.fixed);
  EXPECT_EQ(isolated.measurements_used, alone.measurements_used);
  EXPECT_EQ(isolated.fixed_config, alone.fixed_config);
  EXPECT_EQ(isolated.objective_trajectory, alone.objective_trajectory);
  EXPECT_EQ(isolated.tests_per_iteration, alone.tests_per_iteration);
  EXPECT_TRUE(isolated.final_graph == alone.final_graph);

  // Per-shard tables hold exactly their own policy's rows.
  EXPECT_EQ(runner.pool().shard(policy_a.result().shard).data().NumRows(),
            policy_a.result().measurements_used);
  EXPECT_EQ(runner.pool().shard(policy_b.result().shard).data().NumRows(),
            policy_b.result().measurements_used);
  EXPECT_NE(policy_a.result().shard, policy_b.result().shard);

  // Pool aggregate: the default shard plus one per group, and rounds where
  // both policies wanted a refresh ran as one parallel batch.
  const ShardPoolStats stats = runner.pool().stats();
  EXPECT_EQ(stats.shards, 3u);
  EXPECT_EQ(stats.refreshes,
            policy_a.result().engine_stats.refreshes +
                policy_b.result().engine_stats.refreshes);
  EXPECT_GE(stats.max_concurrent_refreshes, 2u);
  // Both policies draw their bootstrap with the same seed, so the combined
  // round-0 batch dedups the second bootstrap at the broker even though the
  // rows land in different shards.
  EXPECT_GE(runner.broker().stats().cache_hits, options.initial_samples);
}

}  // namespace
}  // namespace unicorn
