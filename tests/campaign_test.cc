// Campaign-layer behavior: batched measurement is row-for-row equivalent to
// serial driving of the same policies, and several policies can share one
// engine + measurement cache.
#include "unicorn/campaign.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/debugger.h"
#include "unicorn/optimizer.h"

namespace unicorn {
namespace {

struct Scenario {
  std::shared_ptr<SystemModel> model;
  PerformanceTask task;
  FaultCuration curation;
};

Scenario MakeScenario(SystemId id, uint64_t seed, size_t samples = 1200) {
  Scenario s;
  SystemSpec spec;
  spec.num_events = 10;
  s.model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  Rng rng(seed);
  s.curation = CurateFaults(*s.model, Tx2(), DefaultWorkload(), samples, &rng, 0.97);
  s.task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), seed + 1);
  return s;
}

DebugOptions FastDebugOptions() {
  DebugOptions options;
  options.initial_samples = 20;
  options.max_iterations = 12;
  options.stall_termination = 20;
  options.repairs_per_iteration = 3;  // batches bigger than one repair
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 16;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 25;
  return options;
}

const Fault* PickFault(const FaultCuration& curation, size_t skip = 0) {
  size_t seen = 0;
  for (const auto& f : curation.faults) {
    if (!f.root_causes.empty()) {
      if (seen == skip) {
        return &f;
      }
      ++seen;
    }
  }
  return nullptr;
}

// The debugger-equivalence guarantee: with `repairs_per_iteration` repairs
// measured as one broker batch, a threads=4 run is row-for-row identical to
// the serial (threads=1) run — measurement is pure per configuration, so
// fan-out order cannot leak into the result.
TEST(CampaignTest, DebuggerBatchedMatchesSerialRowForRow) {
  Scenario s = MakeScenario(SystemId::kXception, 300);
  const Fault* fault = PickFault(s.curation);
  ASSERT_NE(fault, nullptr);
  const auto goals = GoalsForFault(s.curation, *fault);

  auto run = [&](int broker_threads) {
    DebugOptions options = FastDebugOptions();
    options.broker.num_threads = broker_threads;
    UnicornDebugger debugger(s.task, options);
    return debugger.Debug(fault->config, goals);
  };
  const DebugResult serial = run(1);
  const DebugResult batched = run(4);

  EXPECT_EQ(batched.fixed, serial.fixed);
  EXPECT_EQ(batched.measurements_used, serial.measurements_used);
  EXPECT_EQ(batched.fixed_config, serial.fixed_config);
  EXPECT_EQ(batched.fixed_measurement, serial.fixed_measurement);
  EXPECT_EQ(batched.objective_trajectory, serial.objective_trajectory);
  EXPECT_EQ(batched.selected_options, serial.selected_options);
  EXPECT_EQ(batched.predicted_root_causes, serial.predicted_root_causes);
  EXPECT_EQ(batched.tests_per_iteration, serial.tests_per_iteration);
  EXPECT_TRUE(batched.final_graph == serial.final_graph);
}

TEST(CampaignTest, OptimizerBatchedMatchesSerial) {
  Scenario s = MakeScenario(SystemId::kBert, 301);
  const size_t objective = s.model->ObjectiveIndices()[0];

  auto run = [&](int broker_threads) {
    OptimizeOptions options;
    options.initial_samples = 20;
    options.max_iterations = 25;
    options.relearn_every = 10;
    options.model.fci.skeleton.max_cond_size = 1;
    options.model.entropic.latent.restarts = 1;
    options.broker.num_threads = broker_threads;
    UnicornOptimizer optimizer(s.task, options);
    return optimizer.Minimize(objective);
  };
  const OptimizeResult serial = run(1);
  const OptimizeResult batched = run(4);

  EXPECT_EQ(batched.best_config, serial.best_config);
  EXPECT_EQ(batched.best_value, serial.best_value);
  EXPECT_EQ(batched.best_trajectory, serial.best_trajectory);
  EXPECT_EQ(batched.evaluated, serial.evaluated);
  EXPECT_EQ(batched.measurements_used, serial.measurements_used);
}

// Two faults debugged concurrently against one shared engine and one shared
// measurement cache: every row either policy measures lands in the one
// table both models learn from, and the second policy's bootstrap (same
// sampling seed) is served entirely from the broker cache.
TEST(CampaignTest, MultiFaultCampaignSharesEngineAndCache) {
  Scenario s = MakeScenario(SystemId::kXception, 302);
  const Fault* fault_a = PickFault(s.curation, 0);
  const Fault* fault_b = PickFault(s.curation, 1);
  ASSERT_NE(fault_a, nullptr);
  if (fault_b == nullptr) {
    fault_b = fault_a;  // one curated fault is enough: dedup still kicks in
  }

  DebugOptions options = FastDebugOptions();
  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.engine = options.engine;
  campaign.seed = options.seed;
  campaign.broker.num_threads = 4;

  CampaignRunner runner(s.task, campaign);
  DebugPolicy policy_a(options, fault_a->config, GoalsForFault(s.curation, *fault_a));
  DebugPolicy policy_b(options, fault_b->config, GoalsForFault(s.curation, *fault_b));
  runner.Run({&policy_a, &policy_b});

  const DebugResult& a = policy_a.result();
  const DebugResult& b = policy_b.result();
  ASSERT_FALSE(a.fixed_config.empty());
  ASSERT_FALSE(b.fixed_config.empty());
  // Shared table: exactly the rows the two policies accepted, nothing else.
  EXPECT_EQ(runner.engine().data().NumRows(), a.measurements_used + b.measurements_used);
  // Shared measurement cache: both policies draw bootstrap samples with the
  // same seed, so the second bootstrap is all cache hits.
  EXPECT_GE(runner.broker().stats().cache_hits, options.initial_samples);
  // One engine served every refresh either policy requested (each policy
  // snapshots the shared stats when it finishes, so both see a prefix of
  // the same refresh history).
  const size_t total_refreshes = runner.engine().stats().refreshes;
  EXPECT_GT(total_refreshes, 0u);
  EXPECT_LE(a.engine_stats.refreshes, total_refreshes);
  EXPECT_LE(b.engine_stats.refreshes, total_refreshes);
}

// A debugging policy and an optimization policy sharing one campaign: the
// multi-objective/transfer shape from the issue — different reasoning loops,
// one measurement table, one broker.
TEST(CampaignTest, MixedDebugAndOptimizePoliciesShareOneCampaign) {
  Scenario s = MakeScenario(SystemId::kXception, 303);
  const Fault* fault = PickFault(s.curation);
  ASSERT_NE(fault, nullptr);

  DebugOptions debug_options = FastDebugOptions();
  debug_options.max_iterations = 8;

  OptimizeOptions optimize_options;
  optimize_options.initial_samples = 10;
  optimize_options.max_iterations = 15;
  optimize_options.relearn_every = 5;
  optimize_options.model = debug_options.model;

  CampaignOptions campaign;
  campaign.model = debug_options.model;
  campaign.broker.num_threads = 4;

  CampaignRunner runner(s.task, campaign);
  DebugPolicy debug_policy(debug_options, fault->config, GoalsForFault(s.curation, *fault));
  OptimizePolicy optimize_policy(optimize_options, {s.model->ObjectiveIndices()[0]});
  runner.Run({&debug_policy, &optimize_policy});

  EXPECT_FALSE(debug_policy.result().fixed_config.empty());
  EXPECT_EQ(optimize_policy.result().measurements_used,
            optimize_options.initial_samples + optimize_options.max_iterations);
  EXPECT_EQ(optimize_policy.result().best_trajectory.size(),
            optimize_policy.result().measurements_used);
  EXPECT_EQ(runner.engine().data().NumRows(),
            debug_policy.result().measurements_used +
                optimize_policy.result().measurements_used);
}

}  // namespace
}  // namespace unicorn
