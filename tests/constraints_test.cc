#include "causal/constraints.h"

#include <gtest/gtest.h>

#include "causal/skeleton.h"
#include "stats/independence.h"
#include "util/rng.h"

namespace unicorn {
namespace {

std::vector<Variable> MakeVars() {
  return {
      {"o0", VarType::kContinuous, VarRole::kOption, {0, 1}},
      {"o1", VarType::kContinuous, VarRole::kOption, {0, 1}},
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
      {"e1", VarType::kContinuous, VarRole::kEvent, {}},
      {"y0", VarType::kContinuous, VarRole::kObjective, {}},
      {"y1", VarType::kContinuous, VarRole::kObjective, {}},
  };
}

TEST(ConstraintsTest, OptionPairsForbidden) {
  const StructuralConstraints c(MakeVars());
  EXPECT_FALSE(c.EdgeAllowed(0, 1));
  EXPECT_TRUE(c.EdgeAllowed(0, 2));
  EXPECT_TRUE(c.EdgeAllowed(2, 3));
  EXPECT_TRUE(c.EdgeAllowed(2, 4));
}

TEST(ConstraintsTest, ForbidEdgeRespected) {
  StructuralConstraints c(MakeVars());
  EXPECT_TRUE(c.EdgeAllowed(0, 2));
  c.ForbidEdge(0, 2);
  EXPECT_FALSE(c.EdgeAllowed(0, 2));
  EXPECT_FALSE(c.EdgeAllowed(2, 0));  // symmetric
  EXPECT_TRUE(c.EdgeAllowed(0, 3));
}

TEST(ConstraintsTest, OrientationsOptionTailObjectiveArrow) {
  const StructuralConstraints c(MakeVars());
  MixedGraph g(6);
  g.AddCircleCircle(0, 2);  // option - event
  g.AddCircleCircle(2, 4);  // event - objective
  g.AddCircleCircle(4, 5);  // objective - objective
  c.ApplyOrientations(&g);
  EXPECT_TRUE(g.IsDirected(0, 2));
  EXPECT_EQ(g.EndMark(2, 4), Mark::kArrow);   // arrow into the objective
  EXPECT_TRUE(g.IsBidirected(4, 5));          // objectives never cause each other
}

TEST(ConstraintsTest, RequiredEdgeOrientedAndKept) {
  StructuralConstraints c(MakeVars());
  c.RequireEdge(2, 3);  // domain knowledge: e0 causes e1
  EXPECT_TRUE(c.EdgeRequired(2, 3));
  EXPECT_TRUE(c.EdgeRequired(3, 2));  // protection is pair-wise
  MixedGraph g(6);
  c.ApplyOrientations(&g);
  EXPECT_TRUE(g.IsDirected(2, 3));
}

TEST(ConstraintsTest, RequiredEdgeSurvivesSkeletonSearch) {
  // e0 and e1 are independent in the data, but domain knowledge insists on
  // the edge: the skeleton search must keep it.
  Rng rng(1);
  std::vector<Variable> vars = MakeVars();
  DataTable data(vars);
  for (int i = 0; i < 300; ++i) {
    data.AddRow({rng.Uniform(), rng.Uniform(), rng.Gaussian(), rng.Gaussian(),
                 rng.Gaussian(), rng.Gaussian()});
  }
  StructuralConstraints c(vars);
  c.RequireEdge(2, 3);
  const CompositeTest test(data);
  const SkeletonResult result = LearnSkeleton(test, c, data.NumVars());
  EXPECT_TRUE(result.graph.HasEdge(2, 3));
}

TEST(ConstraintsTest, ForbiddenEdgeNeverAppears) {
  // e0 strongly drives e1, but the edge is forbidden: it must not appear.
  Rng rng(2);
  std::vector<Variable> vars = MakeVars();
  DataTable data(vars);
  for (int i = 0; i < 300; ++i) {
    const double e0 = rng.Gaussian();
    data.AddRow({rng.Uniform(), rng.Uniform(), e0, 2.0 * e0 + rng.Gaussian(0, 0.1),
                 rng.Gaussian(), rng.Gaussian()});
  }
  StructuralConstraints c(vars);
  c.ForbidEdge(2, 3);
  const CompositeTest test(data);
  const SkeletonResult result = LearnSkeleton(test, c, data.NumVars());
  EXPECT_FALSE(result.graph.HasEdge(2, 3));
}

}  // namespace
}  // namespace unicorn
