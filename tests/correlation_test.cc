#include "stats/correlation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace unicorn {
namespace {

TEST(CorrelationTest, PearsonPerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(CorrelationTest, PearsonPerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(CorrelationTest, PearsonDegenerateZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(CorrelationTest, PearsonApproxZeroForIndependent) {
  Rng rng(1);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 20000; ++i) {
    a.push_back(rng.Gaussian());
    b.push_back(rng.Gaussian());
  }
  EXPECT_NEAR(PearsonCorrelation(a, b), 0.0, 0.02);
}

TEST(CorrelationTest, MidRanksSimple) {
  EXPECT_EQ(MidRanks({10, 30, 20}), (std::vector<double>{1, 3, 2}));
}

TEST(CorrelationTest, MidRanksTiesAveraged) {
  EXPECT_EQ(MidRanks({5, 5, 1}), (std::vector<double>{2.5, 2.5, 1}));
}

TEST(CorrelationTest, SpearmanMonotoneNonlinear) {
  // Spearman is 1 for any strictly increasing transform.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(i * i * i);
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(CorrelationTest, SpearmanReversed) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {5, 4, 3, 2, 1};
  EXPECT_NEAR(SpearmanCorrelation(x, y), -1.0, 1e-12);
}

TEST(CorrelationTest, MapeBasic) {
  EXPECT_NEAR(Mape({100, 200}, {90, 220}), 10.0, 1e-9);
}

TEST(CorrelationTest, MapePerfectPrediction) {
  EXPECT_EQ(Mape({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(CorrelationTest, MapeSkipsZeroTruth) {
  EXPECT_NEAR(Mape({0.0, 100.0}, {50.0, 110.0}), 10.0, 1e-9);
}

}  // namespace
}  // namespace unicorn
