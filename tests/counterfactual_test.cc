#include "causal/counterfactual.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace unicorn {
namespace {

// Simple repairable system: o0 high makes y bad (threshold cliff),
// o1 is noise.
struct RepairSystem {
  DataTable data;
  MixedGraph graph;
  std::vector<VarRole> roles;
};

RepairSystem MakeRepairSystem(size_t n, Rng* rng) {
  RepairSystem s;
  std::vector<Variable> vars = {
      {"o0", VarType::kDiscrete, VarRole::kOption, {0, 1, 2}},
      {"o1", VarType::kDiscrete, VarRole::kOption, {0, 1}},
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
      {"y", VarType::kContinuous, VarRole::kObjective, {}},
  };
  s.data = DataTable(vars);
  for (size_t i = 0; i < n; ++i) {
    const double o0 = static_cast<double>(rng->UniformInt(uint64_t{3}));
    const double o1 = rng->Bernoulli(0.5) ? 1.0 : 0.0;
    const double e0 = 10.0 * o0 + rng->Gaussian(0, 0.5);
    const double y = (o0 >= 2.0 ? 100.0 : 10.0) + e0 * 0.1 + rng->Gaussian(0, 1.0);
    s.data.AddRow({o0, o1, e0, y});
  }
  s.graph = MixedGraph(4);
  s.graph.AddDirected(0, 2);
  s.graph.AddDirected(2, 3);
  s.graph.AddDirected(0, 3);
  s.graph.AddDirected(1, 3);  // o1 is a (weak) direct parent of y
  s.roles = {VarRole::kOption, VarRole::kOption, VarRole::kEvent, VarRole::kObjective};
  return s;
}

TEST(CounterfactualTest, OptionsOnPathsDeduplicated) {
  std::vector<RankedPath> paths;
  paths.push_back({{0, 2, 3}, 1.0});
  paths.push_back({{0, 3}, 0.5});
  paths.push_back({{1, 3}, 0.2});
  const std::vector<VarRole> roles = {VarRole::kOption, VarRole::kOption, VarRole::kEvent,
                                      VarRole::kObjective};
  const auto options = OptionsOnPaths(paths, roles);
  EXPECT_EQ(options, (std::vector<size_t>{0, 1}));
}

TEST(CounterfactualTest, BestRepairFlipsCulprit) {
  Rng rng(1);
  const RepairSystem s = MakeRepairSystem(3000, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  const auto paths = est.RankPaths({3}, 5);
  ASSERT_FALSE(paths.empty());

  const std::vector<double> fault_row = {2.0, 0.0, 20.0, 102.0};  // o0 = 2 is the bug
  const std::vector<ObjectiveGoal> goals = {{3, 30.0}};
  const auto repairs = GenerateRepairs(est, paths, s.roles, fault_row, goals);
  ASSERT_FALSE(repairs.empty());
  // The best repair must move o0 off level 2.
  const auto& best = repairs.front();
  EXPECT_EQ(best.assignments[0].first, 0u);
  EXPECT_LT(est.ValueOfLevel(0, best.assignments[0].second), 2.0);
  EXPECT_GT(best.ice, 0.0);
}

TEST(CounterfactualTest, IceNegativeForHarmfulRepair) {
  Rng rng(2);
  const RepairSystem s = MakeRepairSystem(3000, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  // "Repair" that sets o0 to the faulty level: P(good) is small.
  Repair bad;
  bad.assignments = {{0, est.LevelOf(0, 2.0)}};
  const std::vector<ObjectiveGoal> goals = {{3, 30.0}};
  EXPECT_LT(RepairIce(est, bad, goals), 0.0);
}

TEST(CounterfactualTest, IceBoundedInUnitInterval) {
  Rng rng(3);
  const RepairSystem s = MakeRepairSystem(1000, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  const auto paths = est.RankPaths({3}, 5);
  const std::vector<double> fault_row = {2.0, 1.0, 20.0, 101.0};
  const std::vector<ObjectiveGoal> goals = {{3, 30.0}};
  for (const auto& r : GenerateRepairs(est, paths, s.roles, fault_row, goals)) {
    EXPECT_GE(r.ice, -1.0);
    EXPECT_LE(r.ice, 1.0);
  }
}

TEST(CounterfactualTest, RepairsSortedByIce) {
  Rng rng(4);
  const RepairSystem s = MakeRepairSystem(1500, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  const auto paths = est.RankPaths({3}, 5);
  const std::vector<double> fault_row = {2.0, 1.0, 20.0, 101.0};
  const std::vector<ObjectiveGoal> goals = {{3, 30.0}};
  const auto repairs = GenerateRepairs(est, paths, s.roles, fault_row, goals);
  for (size_t i = 1; i < repairs.size(); ++i) {
    EXPECT_GE(repairs[i - 1].ice, repairs[i].ice);
  }
}

TEST(CounterfactualTest, MultiObjectiveIceIsMinimum) {
  Rng rng(5);
  const RepairSystem s = MakeRepairSystem(1500, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  Repair r;
  r.assignments = {{0, 0}};
  const std::vector<ObjectiveGoal> easy = {{3, 1000.0}};
  const std::vector<ObjectiveGoal> hard = {{3, 1000.0}, {3, -1000.0}};
  EXPECT_GE(RepairIce(est, r, easy), RepairIce(est, r, hard));
}

TEST(CounterfactualTest, PairRepairsIncluded) {
  Rng rng(6);
  const RepairSystem s = MakeRepairSystem(1500, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  const auto paths = est.RankPaths({3}, 5);
  const std::vector<double> fault_row = {2.0, 1.0, 20.0, 101.0};
  const std::vector<ObjectiveGoal> goals = {{3, 30.0}};
  RepairOptions options;
  options.pair_seed_count = 6;
  const auto repairs = GenerateRepairs(est, paths, s.roles, fault_row, goals, options);
  bool has_pair = false;
  for (const auto& r : repairs) {
    has_pair |= r.assignments.size() == 2;
  }
  // With two options on the paths, pair repairs should be generated.
  EXPECT_TRUE(has_pair);
}

TEST(CounterfactualTest, EmptyGoalsGiveZeroIce) {
  Rng rng(7);
  const RepairSystem s = MakeRepairSystem(500, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  Repair r;
  r.assignments = {{0, 0}};
  EXPECT_EQ(RepairIce(est, r, {}), 0.0);
}

}  // namespace
}  // namespace unicorn
