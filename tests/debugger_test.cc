#include "unicorn/debugger.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"

namespace unicorn {
namespace {

struct Scenario {
  std::shared_ptr<SystemModel> model;
  PerformanceTask task;
  FaultCuration curation;
};

Scenario MakeScenario(SystemId id, uint64_t seed, size_t samples = 1500) {
  Scenario s;
  SystemSpec spec;
  spec.num_events = 10;
  s.model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  Rng rng(seed);
  s.curation = CurateFaults(*s.model, Tx2(), DefaultWorkload(), samples, &rng, 0.97);
  s.task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), seed + 1);
  return s;
}

DebugOptions FastOptions() {
  DebugOptions options;
  options.initial_samples = 25;
  options.max_iterations = 25;
  options.stall_termination = 30;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 16;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 25;
  return options;
}

TEST(DebuggerTest, ImprovesLatencyFault) {
  Scenario s = MakeScenario(SystemId::kXception, 100);
  ASSERT_FALSE(s.curation.faults.empty());
  // Pick a single-objective fault with known root causes: a correct fix
  // removes a multiplicative penalty, so the improvement must be large.
  const Fault* fault = nullptr;
  for (const auto& f : s.curation.faults) {
    if (!f.root_causes.empty() && f.objectives.size() == 1) {
      fault = &f;
      break;
    }
  }
  ASSERT_NE(fault, nullptr);
  const auto goals = GoalsForFault(s.curation, *fault);
  UnicornDebugger debugger(s.task, FastOptions());
  const DebugResult result = debugger.Debug(fault->config, goals);
  const size_t obj = fault->objectives[0];
  EXPECT_LT(result.fixed_measurement[obj], fault->measurement[obj] * 0.8);
  EXPECT_GT(result.measurements_used, 25u);
}

TEST(DebuggerTest, PredictedCausesAreOptions) {
  Scenario s = MakeScenario(SystemId::kX264, 101);
  const Fault* fault = nullptr;
  for (const auto& f : s.curation.faults) {
    if (!f.root_causes.empty()) {
      fault = &f;
      break;
    }
  }
  ASSERT_NE(fault, nullptr);
  UnicornDebugger debugger(s.task, FastOptions());
  const DebugResult result = debugger.Debug(fault->config, GoalsForFault(s.curation, *fault));
  for (size_t cause : result.predicted_root_causes) {
    EXPECT_EQ(s.model->variables()[cause].role, VarRole::kOption);
  }
  EXPECT_TRUE(
      std::is_sorted(result.predicted_root_causes.begin(), result.predicted_root_causes.end()));
}

TEST(DebuggerTest, TrajectoryRecorded) {
  Scenario s = MakeScenario(SystemId::kBert, 102);
  ASSERT_FALSE(s.curation.faults.empty());
  const Fault& fault = s.curation.faults.front();
  UnicornDebugger debugger(s.task, FastOptions());
  const DebugResult result = debugger.Debug(fault.config, GoalsForFault(s.curation, fault));
  EXPECT_EQ(result.objective_trajectory.size(), result.selected_options.size());
  for (const auto& step : result.objective_trajectory) {
    EXPECT_EQ(step.size(), fault.objectives.size());
  }
}

TEST(DebuggerTest, WarmStartUsesFewerMeasurementsOfItsOwn) {
  Scenario s = MakeScenario(SystemId::kXception, 103);
  ASSERT_FALSE(s.curation.faults.empty());
  // Use a single-objective fault: multi-objective badness can trade one
  // objective against another, which the per-objective assertion below
  // does not model.
  const Fault* picked = nullptr;
  for (const auto& f : s.curation.faults) {
    if (f.objectives.size() == 1) {
      picked = &f;
      break;
    }
  }
  ASSERT_NE(picked, nullptr);
  const Fault& fault = *picked;
  const auto goals = GoalsForFault(s.curation, fault);
  // Warm start with the curated source data (transfer scenario): initial
  // samples can drop to a handful.
  DebugOptions warm_options = FastOptions();
  warm_options.initial_samples = 5;
  UnicornDebugger warm(s.task, warm_options);
  std::vector<size_t> head;
  for (size_t r = 0; r < 150; ++r) {
    head.push_back(r);
  }
  const DataTable warm_table = s.curation.samples.SelectRows(head);
  const DebugResult result = warm.Debug(fault.config, goals, &warm_table);
  for (size_t obj : fault.objectives) {
    // Allow measurement-noise slack: the fault is re-measured by the
    // debugger with a fresh noise stream.
    EXPECT_LE(result.fixed_measurement[obj], fault.measurement[obj] * 1.1);
  }
  EXPECT_LT(result.measurements_used, 70u);
}

TEST(DebuggerTest, FixedConfigStaysInDomains) {
  Scenario s = MakeScenario(SystemId::kDeepspeech, 104);
  ASSERT_FALSE(s.curation.faults.empty());
  const Fault& fault = s.curation.faults.front();
  UnicornDebugger debugger(s.task, FastOptions());
  const DebugResult result = debugger.Debug(fault.config, GoalsForFault(s.curation, fault));
  const auto options = s.model->OptionIndices();
  for (size_t i = 0; i < options.size(); ++i) {
    const Variable& var = s.model->variables()[options[i]];
    EXPECT_GE(result.fixed_config[i], var.domain.front());
    EXPECT_LE(result.fixed_config[i], var.domain.back());
  }
}

}  // namespace
}  // namespace unicorn
