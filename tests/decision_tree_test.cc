#include "baselines/decision_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/random_forest.h"

namespace unicorn {
namespace {

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i] = i;
  }
  return rows;
}

TEST(DecisionTreeTest, LearnsThresholdSplit) {
  // y = 1 iff x0 > 0.5.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Uniform();
    x.push_back({v});
    y.push_back(v > 0.5 ? 1.0 : 0.0);
  }
  DecisionTree tree;
  tree.Fit(x, y, AllRows(x.size()), {}, &rng);
  EXPECT_NEAR(tree.Predict({0.1}), 0.0, 0.05);
  EXPECT_NEAR(tree.Predict({0.9}), 1.0, 0.05);
}

TEST(DecisionTreeTest, LearnsXorWithDepth) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    const double b = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    x.push_back({a, b});
    y.push_back(a != b ? 1.0 : 0.0);
  }
  DecisionTree tree;
  tree.Fit(x, y, AllRows(x.size()), {}, &rng);
  EXPECT_NEAR(tree.Predict({0.0, 1.0}), 1.0, 0.05);
  EXPECT_NEAR(tree.Predict({1.0, 1.0}), 0.0, 0.05);
}

TEST(DecisionTreeTest, EmptyFitPredictsZero) {
  DecisionTree tree;
  tree.Fit({}, {}, {}, {}, nullptr);
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.Predict({1.0}), 0.0);
}

TEST(DecisionTreeTest, ConstantTargetSingleLeaf) {
  std::vector<std::vector<double>> x = {{1}, {2}, {3}};
  std::vector<double> y = {5, 5, 5};
  DecisionTree tree;
  Rng rng(3);
  tree.Fit(x, y, AllRows(3), {}, &rng);
  EXPECT_EQ(tree.Predict({2}), 5.0);
  EXPECT_TRUE(tree.DecisionPath({2}).empty());  // root is a leaf
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform();
    x.push_back({v});
    y.push_back(v);  // continuous target forces deep splits if allowed
  }
  TreeOptions options;
  options.max_depth = 2;
  DecisionTree tree;
  tree.Fit(x, y, AllRows(x.size()), options, &rng);
  EXPECT_LE(tree.DecisionPath({0.3}).size(), 2u);
}

TEST(DecisionTreeTest, DecisionPathConsistentWithPrediction) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    x.push_back({a, b});
    y.push_back(a > 0.5 ? (b > 0.5 ? 3.0 : 2.0) : 1.0);
  }
  DecisionTree tree;
  tree.Fit(x, y, AllRows(x.size()), {}, &rng);
  const auto path = tree.DecisionPath({0.8, 0.8});
  EXPECT_FALSE(path.empty());
  for (const auto& split : path) {
    const std::vector<double> probe = {0.8, 0.8};
    EXPECT_EQ(probe[split.feature] <= split.threshold, split.left);
  }
}

TEST(DecisionTreeTest, LeavesPartitionSamples) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(6);
  for (int i = 0; i < 250; ++i) {
    const double v = rng.Uniform();
    x.push_back({v});
    y.push_back(v > 0.3 ? 1.0 : 0.0);
  }
  DecisionTree tree;
  tree.Fit(x, y, AllRows(x.size()), {}, &rng);
  size_t total = 0;
  for (const auto& leaf : tree.Leaves()) {
    total += leaf.count;
  }
  EXPECT_EQ(total, x.size());
}

TEST(RandomForestTest, RegressionAccuracy) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b);
  }
  RandomForest forest;
  forest.Fit(x, y, {}, &rng);
  double sse = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    const double pred = forest.Predict({a, b});
    const double truth = 3.0 * a - 2.0 * b;
    sse += (pred - truth) * (pred - truth);
  }
  EXPECT_LT(sse / 50.0, 0.3);
}

TEST(RandomForestTest, VarianceZeroOnDegenerateTarget) {
  std::vector<std::vector<double>> x = {{1}, {2}, {3}, {4}};
  std::vector<double> y = {7, 7, 7, 7};
  RandomForest forest;
  Rng rng(8);
  forest.Fit(x, y, {}, &rng);
  double mean = 0.0;
  double variance = 1.0;
  forest.PredictWithVariance({2.5}, &mean, &variance);
  EXPECT_NEAR(mean, 7.0, 1e-9);
  EXPECT_NEAR(variance, 0.0, 1e-9);
}

TEST(RandomForestTest, VariancePositiveOffManifold) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Uniform();
    x.push_back({v});
    y.push_back(std::sin(8.0 * v));
  }
  RandomForest forest;
  forest.Fit(x, y, {}, &rng);
  double mean = 0.0;
  double variance = 0.0;
  forest.PredictWithVariance({0.5}, &mean, &variance);
  EXPECT_GE(variance, 0.0);
}

TEST(ExpectedImprovementTest, ZeroVarianceWorseMeanGivesZero) {
  EXPECT_NEAR(ExpectedImprovement(10.0, 0.0, 5.0), 0.0, 1e-6);
}

TEST(ExpectedImprovementTest, BetterMeanPositive) {
  EXPECT_GT(ExpectedImprovement(1.0, 0.5, 5.0), 0.0);
}

TEST(ExpectedImprovementTest, MoreUncertaintyMoreEi) {
  const double low = ExpectedImprovement(5.0, 0.1, 5.0);
  const double high = ExpectedImprovement(5.0, 2.0, 5.0);
  EXPECT_GT(high, low);
}

}  // namespace
}  // namespace unicorn
