#include "stats/discretize.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace unicorn {
namespace {

TEST(DiscretizeTest, DiscreteLevelsMapDirectly) {
  std::vector<double> col = {5.0, 1.0, 5.0, 3.0, 1.0};
  const CodedColumn coded = DiscretizeColumn(col, VarType::kDiscrete, 5);
  EXPECT_EQ(coded.cardinality, 3);
  // Codes ordered by value: 1 -> 0, 3 -> 1, 5 -> 2.
  EXPECT_EQ(coded.codes, (std::vector<int>{2, 0, 2, 1, 0}));
}

TEST(DiscretizeTest, BinaryColumn) {
  std::vector<double> col = {0, 1, 1, 0};
  const CodedColumn coded = DiscretizeColumn(col, VarType::kBinary, 5);
  EXPECT_EQ(coded.cardinality, 2);
}

TEST(DiscretizeTest, ContinuousQuantileBins) {
  std::vector<double> col;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    col.push_back(rng.Uniform());
  }
  const CodedColumn coded = DiscretizeColumn(col, VarType::kContinuous, 4);
  EXPECT_EQ(coded.cardinality, 4);
  std::vector<int> counts(4, 0);
  for (int c : coded.codes) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 4);
    ++counts[static_cast<size_t>(c)];
  }
  // Quantile bins should be roughly balanced.
  for (int c : counts) {
    EXPECT_NEAR(c, 250, 60);
  }
}

TEST(DiscretizeTest, ContinuousWithFewDistinctValuesActsDiscrete) {
  std::vector<double> col = {1.0, 2.0, 1.0, 2.0};
  const CodedColumn coded = DiscretizeColumn(col, VarType::kContinuous, 5);
  EXPECT_EQ(coded.cardinality, 2);
}

TEST(DiscretizeTest, ConstantColumnSingleBin) {
  std::vector<double> col(100, 3.0);
  const CodedColumn coded = DiscretizeColumn(col, VarType::kContinuous, 5);
  EXPECT_EQ(coded.cardinality, 1);
}

TEST(DiscretizeTest, EmptyColumn) {
  const CodedColumn coded = DiscretizeColumn({}, VarType::kContinuous, 5);
  EXPECT_TRUE(coded.codes.empty());
}

TEST(DiscretizeTest, MonotoneCodes) {
  // Codes must respect value order for ordinal use.
  std::vector<double> col;
  for (int i = 0; i < 100; ++i) {
    col.push_back(i);
  }
  const CodedColumn coded = DiscretizeColumn(col, VarType::kContinuous, 5);
  for (size_t i = 1; i < col.size(); ++i) {
    EXPECT_LE(coded.codes[i - 1], coded.codes[i]);
  }
}

TEST(CodedTableTest, StrataCombineColumns) {
  std::vector<Variable> vars(2);
  vars[0] = {"a", VarType::kDiscrete, VarRole::kOption, {0, 1}};
  vars[1] = {"b", VarType::kDiscrete, VarRole::kOption, {0, 1}};
  DataTable t(vars);
  t.AddRow({0, 0});
  t.AddRow({0, 1});
  t.AddRow({1, 0});
  t.AddRow({1, 1});
  t.AddRow({0, 0});
  const CodedTable coded(t);
  const CodedColumn strata = coded.Strata({0, 1});
  EXPECT_EQ(strata.cardinality, 4);
  EXPECT_EQ(strata.codes[0], strata.codes[4]);
  EXPECT_NE(strata.codes[0], strata.codes[1]);
  EXPECT_NE(strata.codes[1], strata.codes[2]);
}

TEST(CodedTableTest, EmptyStrataIsSingleStratum) {
  std::vector<Variable> vars(1);
  vars[0] = {"a", VarType::kDiscrete, VarRole::kOption, {0, 1}};
  DataTable t(vars);
  t.AddRow({0});
  t.AddRow({1});
  const CodedTable coded(t);
  const CodedColumn strata = coded.Strata({});
  EXPECT_EQ(strata.cardinality, 1);
  EXPECT_EQ(strata.codes, (std::vector<int>{0, 0}));
}

}  // namespace
}  // namespace unicorn
