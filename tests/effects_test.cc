#include "causal/effects.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace unicorn {
namespace {

// Confounded system mirroring Fig. 1 of the paper:
//   policy (option) -> misses (event), policy -> throughput, misses ->
//   throughput (negative). Marginally, misses and throughput are positively
//   correlated; causally, raising misses lowers throughput.
struct CacheSystem {
  DataTable data;
  MixedGraph graph;
  // Variable indices.
  static constexpr size_t kPolicy = 0;
  static constexpr size_t kMisses = 1;
  static constexpr size_t kThroughput = 2;
};

CacheSystem MakeCacheSystem(size_t n, Rng* rng) {
  CacheSystem s;
  std::vector<Variable> vars = {
      {"cache_policy", VarType::kDiscrete, VarRole::kOption, {0, 1, 2, 3}},
      {"cache_misses", VarType::kContinuous, VarRole::kEvent, {}},
      {"throughput_cost", VarType::kContinuous, VarRole::kObjective, {}},
  };
  s.data = DataTable(vars);
  for (size_t i = 0; i < n; ++i) {
    const double policy = static_cast<double>(rng->UniformInt(uint64_t{4}));
    // Aggressive policies produce more misses AND better (lower) cost —
    // the confounding that fools correlational models. The noise span (140)
    // exceeds the policy shift (60) so every policy stratum has support in
    // every coarse misses bin (positivity for the adjustment estimator).
    const double misses = 20.0 * policy + rng->Uniform(0, 140);
    const double cost = 100.0 - 20.0 * policy + 0.2 * misses + rng->Gaussian(0, 1.0);
    s.data.AddRow({policy, misses, cost});
  }
  s.graph = MixedGraph(3);
  s.graph.AddDirected(CacheSystem::kPolicy, CacheSystem::kMisses);
  s.graph.AddDirected(CacheSystem::kPolicy, CacheSystem::kThroughput);
  s.graph.AddDirected(CacheSystem::kMisses, CacheSystem::kThroughput);
  return s;
}

TEST(EffectsTest, AdjustmentDeconfounds) {
  Rng rng(1);
  const CacheSystem s = MakeCacheSystem(6000, &rng);
  const CausalEffectEstimator est(s.graph, s.data, /*max_bins=*/3);
  // Under do(misses = high) vs do(misses = low), cost must INCREASE
  // (the causal direction), even though the marginal correlation of misses
  // with cost is dominated by the policy confounder.
  const int levels = est.NumLevels(CacheSystem::kMisses);
  ASSERT_GE(levels, 2);
  const double low = est.ExpectationDo(CacheSystem::kThroughput, CacheSystem::kMisses, 0);
  const double high =
      est.ExpectationDo(CacheSystem::kThroughput, CacheSystem::kMisses, levels - 1);
  EXPECT_GT(high, low);
}

TEST(EffectsTest, UnadjustedConditionalWouldMislead) {
  // Sanity check on the data itself: the raw conditional means go the other
  // way (more misses |-> lower cost) because of the confounder.
  Rng rng(2);
  const CacheSystem s = MakeCacheSystem(6000, &rng);
  // Graph WITHOUT the confounding edge: adjustment set empty.
  MixedGraph naive(3);
  naive.AddDirected(CacheSystem::kMisses, CacheSystem::kThroughput);
  const CausalEffectEstimator est(naive, s.data, /*max_bins=*/3);
  const int levels = est.NumLevels(CacheSystem::kMisses);
  const double low = est.ExpectationDo(CacheSystem::kThroughput, CacheSystem::kMisses, 0);
  const double high =
      est.ExpectationDo(CacheSystem::kThroughput, CacheSystem::kMisses, levels - 1);
  EXPECT_LT(high, low);  // the Simpson reversal
}

TEST(EffectsTest, AceNonNegativeAndNonTrivial) {
  Rng rng(3);
  const CacheSystem s = MakeCacheSystem(2000, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  const double ace = est.Ace(CacheSystem::kThroughput, CacheSystem::kPolicy);
  EXPECT_GT(ace, 0.0);
}

TEST(EffectsTest, AceZeroForSingleLevel) {
  std::vector<Variable> vars = {
      {"o", VarType::kDiscrete, VarRole::kOption, {1}},
      {"y", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable t(vars);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    t.AddRow({1.0, rng.Gaussian()});
  }
  MixedGraph g(2);
  g.AddDirected(0, 1);
  const CausalEffectEstimator est(g, t);
  EXPECT_EQ(est.Ace(1, 0), 0.0);
}

TEST(EffectsTest, ProbabilityLeqDoInUnitRange) {
  Rng rng(5);
  const CacheSystem s = MakeCacheSystem(1000, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  const double p = est.ProbabilityLeqDo(CacheSystem::kThroughput, 100.0,
                                        CacheSystem::kPolicy, 3);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(EffectsTest, ProbabilityMonotoneInThreshold) {
  Rng rng(6);
  const CacheSystem s = MakeCacheSystem(1000, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  double prev = 0.0;
  for (double threshold : {50.0, 80.0, 110.0, 140.0}) {
    const double p =
        est.ProbabilityLeqDo(CacheSystem::kThroughput, threshold, CacheSystem::kPolicy, 1);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(EffectsTest, MultiTreatmentIntervention) {
  Rng rng(7);
  const CacheSystem s = MakeCacheSystem(2000, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  const double e =
      est.ExpectationDo(CacheSystem::kThroughput, {{CacheSystem::kPolicy, 3}});
  EXPECT_TRUE(std::isfinite(e));
}

TEST(EffectsTest, PathAceAveragesEdgeAces) {
  Rng rng(8);
  const CacheSystem s = MakeCacheSystem(2000, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  const CausalPath path = {CacheSystem::kPolicy, CacheSystem::kMisses,
                           CacheSystem::kThroughput};
  const double path_ace = est.PathAce(path);
  EXPECT_GT(path_ace, 0.0);
  const double manual = 0.5 * (est.Ace(CacheSystem::kMisses, CacheSystem::kPolicy) +
                               est.Ace(CacheSystem::kThroughput, CacheSystem::kMisses));
  EXPECT_NEAR(path_ace, manual, 1e-9);
}

TEST(EffectsTest, RankPathsSortedDescending) {
  Rng rng(9);
  const CacheSystem s = MakeCacheSystem(1500, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  const auto ranked = est.RankPaths({CacheSystem::kThroughput}, 10);
  ASSERT_GE(ranked.size(), 2u);  // policy->cost and policy->misses->cost
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].path_ace, ranked[i].path_ace);
  }
  for (const auto& rp : ranked) {
    EXPECT_EQ(rp.nodes.back(), CacheSystem::kThroughput);
  }
}

TEST(EffectsTest, RankPathsTopKRespected) {
  Rng rng(10);
  const CacheSystem s = MakeCacheSystem(800, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  EXPECT_LE(est.RankPaths({CacheSystem::kThroughput}, 1).size(), 1u);
}

TEST(EffectsTest, LevelRoundTrip) {
  Rng rng(11);
  const CacheSystem s = MakeCacheSystem(500, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  // LevelOf/ValueOfLevel round-trip for the discrete policy option.
  for (int level = 0; level < est.NumLevels(CacheSystem::kPolicy); ++level) {
    const double value = est.ValueOfLevel(CacheSystem::kPolicy, level);
    EXPECT_EQ(est.LevelOf(CacheSystem::kPolicy, value), level);
  }
}

TEST(EffectsTest, UnseenTreatmentFallsBackGracefully) {
  Rng rng(12);
  const CacheSystem s = MakeCacheSystem(200, &rng);
  const CausalEffectEstimator est(s.graph, s.data);
  // Level beyond the observed range: estimator must not crash and must
  // return something finite.
  const double e = est.ExpectationDo(CacheSystem::kThroughput, CacheSystem::kPolicy, 99);
  EXPECT_TRUE(std::isfinite(e));
}

}  // namespace
}  // namespace unicorn
