// The sharded reasoning plane must be pure plumbing: a shard refreshing
// over the shared concurrent CI cache is bit-identical to a monolithic
// CausalModelEngine fed the same rows — for any refresh thread count, with
// the cache shared or private — and the cross-shard hit ledger counts
// exactly the tests one shard's refresh bought another.
#include "unicorn/engine_pool.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/campaign.h"
#include "unicorn/debugger.h"
#include "util/rng.h"

namespace unicorn {
namespace {

DataTable MeasuredData(SystemId id, size_t rows, uint64_t seed, int num_events = 5) {
  SystemSpec spec;
  spec.num_events = num_events;
  const auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < rows; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  return model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
}

CausalModelOptions SmallModelOptions() {
  CausalModelOptions options;
  options.fci.skeleton.max_cond_size = 2;
  options.fci.skeleton.max_subsets = 16;
  options.fci.max_pds_cond_size = 1;
  options.entropic.latent.restarts = 1;
  options.entropic.latent.iterations = 20;
  return options;
}

::testing::AssertionResult GraphsIdentical(const MixedGraph& a, const MixedGraph& b) {
  if (a.NumNodes() != b.NumNodes()) {
    return ::testing::AssertionFailure()
           << "node counts differ: " << a.NumNodes() << " vs " << b.NumNodes();
  }
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    for (size_t j = 0; j < a.NumNodes(); ++j) {
      if (a.EndMark(i, j) != b.EndMark(i, j)) {
        return ::testing::AssertionFailure()
               << "end-mark differs at (" << i << ", " << j << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// A single-group pool is the monolithic engine: same graph, same test
// counts, same per-refresh stats, across interleaved appends and refreshes
// — at refresh_threads 1 and 4.
TEST(EnginePoolTest, SingleShardMatchesMonolithicEngineBitForBit) {
  const DataTable all = MeasuredData(SystemId::kX264, 80, 41);
  const CausalModelOptions model_options = SmallModelOptions();

  CausalModelEngine monolith(all.Variables(), model_options);

  for (const int refresh_threads : {1, 4}) {
    ShardPoolOptions pool_options;
    pool_options.model = model_options;
    pool_options.refresh_threads = refresh_threads;
    EngineShardPool pool(all.Variables(), pool_options);
    const size_t shard = pool.ShardForGroup("debug");
    ASSERT_EQ(shard, 0u);
    ASSERT_EQ(pool.ShardForGroup("debug"), 0u);  // stable assignment

    CausalModelEngine reference(all.Variables(), model_options);
    for (size_t r = 0; r < all.NumRows(); ++r) {
      pool.shard(shard).AddRow(all.Row(r));
      reference.AddRow(all.Row(r));
      if (r % 20 == 19) {
        pool.RefreshShards({shard}, 91 + r);
        reference.Refresh(91 + r);
        EXPECT_TRUE(
            GraphsIdentical(pool.shard(shard).model().admg, reference.model().admg));
        EXPECT_EQ(pool.shard(shard).model().independence_tests,
                  reference.model().independence_tests);
        EXPECT_EQ(pool.shard(shard).stats().tests_requested,
                  reference.stats().tests_requested);
        EXPECT_EQ(pool.shard(shard).stats().tests_evaluated,
                  reference.stats().tests_evaluated);
        EXPECT_EQ(pool.shard(shard).stats().cache_hits, reference.stats().cache_hits);
      }
    }
    // Identical row streams leave identical fingerprints — the property the
    // shared cache's cross-shard keying rests on.
    EXPECT_EQ(pool.shard(shard).data_fingerprint(), reference.data_fingerprint());
    // A lone shard can never hit entries "another shard" stored.
    EXPECT_EQ(pool.shard(shard).stats().total_cross_shard_hits, 0);
    EXPECT_EQ(pool.stats().cross_shard_hits, 0);
    EXPECT_EQ(pool.stats().shards, 1u);
    EXPECT_GT(pool.stats().refresh_batches, 0u);
  }
}

// Two shards fed identical rows: the second one to refresh pays (almost)
// nothing — every cacheable p-value is a cross-shard hit — and learns the
// identical model. Divergence then cuts the sharing off permanently.
TEST(EnginePoolTest, CrossShardHitsOnIdenticalPrefixesAndNoneAfterDivergence) {
  const DataTable all = MeasuredData(SystemId::kX264, 60, 42);
  ShardPoolOptions pool_options;
  pool_options.model = SmallModelOptions();
  EngineShardPool pool(all.Variables(), pool_options);
  const size_t a = pool.ShardForGroup("latency");
  const size_t b = pool.ShardForGroup("energy");
  ASSERT_NE(a, b);

  // Identical row-prefix: e.g. two transfer campaigns seeded from the same
  // source recording.
  for (size_t r = 0; r + 1 < all.NumRows(); ++r) {
    pool.shard(a).AddRow(all.Row(r));
    pool.shard(b).AddRow(all.Row(r));
  }
  EXPECT_EQ(pool.shard(a).data_fingerprint(), pool.shard(b).data_fingerprint());

  pool.RefreshShards({a}, 7);
  EXPECT_EQ(pool.shard(a).stats().cross_shard_hits, 0);  // first payer
  pool.RefreshShards({b}, 7);
  EXPECT_GT(pool.shard(b).stats().cross_shard_hits, 0);
  // Shard b re-evaluated only what the cache cannot hold (oversized
  // conditioning sets); every cacheable test came from shard a's refresh.
  EXPECT_LT(pool.shard(b).stats().tests_evaluated, pool.shard(a).stats().tests_evaluated);
  EXPECT_EQ(pool.shard(b).stats().tests_requested, pool.shard(a).stats().tests_requested);
  EXPECT_TRUE(GraphsIdentical(pool.shard(a).model().admg, pool.shard(b).model().admg));

  const ShardPoolStats mid = pool.stats();
  EXPECT_EQ(mid.cross_shard_hits, pool.shard(b).stats().total_cross_shard_hits);
  EXPECT_GT(mid.cache_hits, 0);

  // Diverge shard b by one extra row: its fingerprint changes, so shard a's
  // entries are unreachable — no stale cross-table reuse, ever.
  pool.shard(b).AddRow(all.Row(all.NumRows() - 1));
  EXPECT_NE(pool.shard(a).data_fingerprint(), pool.shard(b).data_fingerprint());
  pool.RefreshShards({b}, 8);
  EXPECT_EQ(pool.shard(b).stats().cross_shard_hits, 0);
  EXPECT_GT(pool.shard(b).stats().tests_evaluated, 0);
}

// Four shards with four different tables refreshed as one parallel batch
// match four standalone engines refreshed serially — the concurrency (and
// the shared cache under it) cannot leak into any shard's model.
TEST(EnginePoolTest, ParallelBatchRefreshMatchesStandaloneEngines) {
  const CausalModelOptions model_options = SmallModelOptions();
  ShardPoolOptions pool_options;
  pool_options.model = model_options;
  pool_options.refresh_threads = 4;
  std::vector<DataTable> tables;
  for (uint64_t i = 0; i < 4; ++i) {
    tables.push_back(MeasuredData(SystemId::kX264, 50 + 5 * i, 50 + i));
  }
  EngineShardPool pool(tables[0].Variables(), pool_options);
  std::vector<size_t> shards;
  for (size_t i = 0; i < tables.size(); ++i) {
    shards.push_back(pool.ShardForGroup("group-" + std::to_string(i)));
    pool.shard(shards[i]).AppendRows(tables[i]);
  }
  pool.RefreshShards(shards, 11);

  const ShardPoolStats stats = pool.stats();
  EXPECT_EQ(stats.shards, 4u);
  EXPECT_EQ(stats.refreshes, 4u);
  EXPECT_EQ(stats.max_concurrent_refreshes, 4u);
  EXPECT_EQ(stats.refresh_batches, 1u);

  for (size_t i = 0; i < tables.size(); ++i) {
    CausalModelEngine reference(tables[i].Variables(), model_options);
    reference.AppendRows(tables[i]);
    reference.Refresh(11);
    EXPECT_TRUE(GraphsIdentical(pool.shard(shards[i]).model().admg, reference.model().admg));
    EXPECT_EQ(pool.shard(shards[i]).model().independence_tests,
              reference.model().independence_tests);
  }
}

// The concurrent cache itself: parallel stores and lookups across shards
// keep the map consistent and the counters exact (also the TSan target for
// the striped locking).
TEST(EnginePoolTest, ConcurrentSharedCacheKeepsCountersExact) {
  CICache cache;
  constexpr int kThreads = 4;
  constexpr int kKeys = 400;
  std::vector<std::thread> threads;
  std::atomic<long long> local_hits{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &local_hits, t] {
      for (int k = 0; k < kKeys; ++k) {
        const auto key =
            CICache::MakeKey(k % 17, (k % 17) + 1 + k % 3, {k % 5}, 100, 0xfeedULL + k % 7);
        const auto hit = cache.LookupFrom(key, static_cast<uint32_t>(t));
        if (hit) {
          local_hits.fetch_add(1);
        } else {
          cache.Store(key, 0.5, static_cast<uint32_t>(t));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(cache.lookups(), static_cast<long long>(kThreads) * kKeys);
  EXPECT_EQ(cache.hits(), local_hits.load());
  EXPECT_GE(cache.hits(), cache.cross_shard_hits());
  // Every distinct key was stored at least once and survives.
  const auto probe = CICache::MakeKey(0, 1, {0}, 100, 0xfeedULL);
  EXPECT_TRUE(cache.Lookup(probe).has_value());

  // Keys with distinct table tags never alias.
  CICache tagged;
  tagged.Store(CICache::MakeKey(1, 2, {3}, 50, /*table_tag=*/111), 0.25);
  EXPECT_TRUE(tagged.Lookup(CICache::MakeKey(2, 1, {3}, 50, 111)).has_value());
  EXPECT_FALSE(tagged.Lookup(CICache::MakeKey(1, 2, {3}, 50, 112)).has_value());
}

DebugOptions PoolDebugOptions() {
  DebugOptions options;
  options.initial_samples = 20;
  options.max_iterations = 10;
  options.stall_termination = 20;
  options.repairs_per_iteration = 3;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 16;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 25;
  return options;
}

// The acceptance pin: a single-group campaign through the sharded runner is
// bit-identical (graph + stats + trajectory) whatever the pool's refresh
// thread count, the engine's skeleton thread count, or whether the CI cache
// is shared — sharding must be invisible until a second group exists.
TEST(EnginePoolTest, SingleGroupCampaignBitIdenticalAcrossPoolConfigurations) {
  SystemSpec spec;
  spec.num_events = 10;
  const auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  Rng rng(310);
  const FaultCuration curation = CurateFaults(*model, Tx2(), DefaultWorkload(), 1200, &rng, 0.97);
  const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 311);
  const Fault* fault = nullptr;
  for (const auto& f : curation.faults) {
    if (!f.root_causes.empty()) {
      fault = &f;
      break;
    }
  }
  ASSERT_NE(fault, nullptr);
  const auto goals = GoalsForFault(curation, *fault);

  struct Config {
    int refresh_threads;
    int engine_threads;
    bool share_ci_cache;
  };
  DebugResult results[4];
  size_t i = 0;
  for (const Config& config : {Config{1, 1, true}, Config{4, 1, true}, Config{1, 4, true},
                               Config{1, 1, false}}) {
    DebugOptions options = PoolDebugOptions();
    options.engine.num_threads = config.engine_threads;
    CampaignOptions campaign = ToCampaignOptions(options);
    campaign.refresh_threads = config.refresh_threads;
    campaign.share_ci_cache = config.share_ci_cache;
    CampaignRunner runner(task, campaign);
    DebugPolicy policy(options, fault->config, goals);
    runner.RunGrouped({GroupedPolicy{&policy, "only-group"}});
    results[i] = policy.TakeResult();
    if (i == 0) {
      EXPECT_EQ(runner.pool().num_shards(), 2u);  // default shard + "only-group"
      EXPECT_EQ(results[0].shard, 1u);            // the named group's shard
      ASSERT_FALSE(results[0].fixed_config.empty());
    } else {
      const DebugResult& r = results[i];
      const DebugResult& baseline = results[0];
      EXPECT_EQ(r.fixed, baseline.fixed);
      EXPECT_EQ(r.measurements_used, baseline.measurements_used);
      EXPECT_EQ(r.fixed_config, baseline.fixed_config);
      EXPECT_EQ(r.fixed_measurement, baseline.fixed_measurement);
      EXPECT_EQ(r.objective_trajectory, baseline.objective_trajectory);
      EXPECT_EQ(r.predicted_root_causes, baseline.predicted_root_causes);
      EXPECT_EQ(r.tests_per_iteration, baseline.tests_per_iteration);
      EXPECT_EQ(r.engine_stats.tests_requested, baseline.engine_stats.tests_requested);
      EXPECT_EQ(r.engine_stats.refreshes, baseline.engine_stats.refreshes);
      EXPECT_TRUE(GraphsIdentical(r.final_graph, baseline.final_graph));
    }
    ++i;
  }
}

}  // namespace
}  // namespace unicorn
