// CausalModelEngine: the incremental path must be trustworthy.
//
// Two hard guarantees anchor the engine's correctness:
//   * exact mode (stale_epsilon = 0, the default): a refresh after streaming
//     rows in one at a time yields a model bit-identical to a from-scratch
//     relearn on the final table — caching and lazy statistics are pure
//     memoization, never approximation;
//   * any thread count: the parallel skeleton sweep merges per-pair outcomes
//     deterministically, so threads=4 equals threads=1 mark for mark.
// Warm-started (approximate) refreshes are only exercised for their own
// contract: periodic full refreshes re-anchor to the exact result, test
// counts shrink, and the output stays a valid ADMG.
#include "unicorn/model_learner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sysmodel/systems.h"
#include "util/rng.h"

namespace unicorn {
namespace {

DataTable MeasuredData(SystemId id, size_t rows, uint64_t seed, int num_events = 6) {
  SystemSpec spec;
  spec.num_events = num_events;
  const auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < rows; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  return model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
}

CausalModelOptions SmallModelOptions() {
  CausalModelOptions options;
  options.fci.skeleton.max_cond_size = 2;
  options.fci.skeleton.max_subsets = 16;
  options.fci.max_pds_cond_size = 1;
  options.entropic.latent.restarts = 1;
  options.entropic.latent.iterations = 20;
  return options;
}

::testing::AssertionResult GraphsIdentical(const MixedGraph& a, const MixedGraph& b) {
  if (a.NumNodes() != b.NumNodes()) {
    return ::testing::AssertionFailure()
           << "node counts differ: " << a.NumNodes() << " vs " << b.NumNodes();
  }
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    for (size_t j = 0; j < a.NumNodes(); ++j) {
      if (a.EndMark(i, j) != b.EndMark(i, j)) {
        return ::testing::AssertionFailure()
               << "end-mark differs at (" << i << ", " << j << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(EngineTest, RowByRowAppendMatchesFromScratchRelearn) {
  const DataTable all = MeasuredData(SystemId::kX264, 70, 11, 5);
  const CausalModelOptions model_options = SmallModelOptions();

  // Stream every measurement through the engine one row at a time,
  // refreshing after each append (exact mode: the default EngineOptions).
  CausalModelEngine engine(all.Variables(), model_options);
  for (size_t r = 0; r < all.NumRows(); ++r) {
    engine.AddRow(all.Row(r));
    engine.Refresh(model_options.seed);
  }

  const LearnedModel scratch = LearnCausalPerformanceModel(all, model_options);
  EXPECT_TRUE(GraphsIdentical(engine.model().admg, scratch.admg));
  EXPECT_EQ(engine.model().independence_tests, scratch.independence_tests);
  EXPECT_EQ(engine.model().circle_marks_resolved, scratch.circle_marks_resolved);
}

// Engine-table warm starts: an engine seeded straight from a persisted
// MeasurementTable must be indistinguishable (bit-identical graph, same
// test counts) from one that absorbed the identical rows live — seeding is
// plumbing, never approximation. Provenance is accounting only.
TEST(EngineTest, SeedFromTableMatchesLiveAbsorbBitForBit) {
  const DataTable all = MeasuredData(SystemId::kX264, 60, 21, 5);
  const CausalModelOptions model_options = SmallModelOptions();

  MeasurementTable table;
  table.num_vars = all.NumVars();
  for (const Variable& v : all.Variables()) {
    table.num_options += v.role == VarRole::kOption ? 1 : 0;
  }
  for (size_t r = 0; r < all.NumRows(); ++r) {
    MeasurementTable::Entry entry;
    entry.row = all.Row(r);
    entry.config.assign(entry.row.begin(),
                        entry.row.begin() + static_cast<long>(table.num_options));
    entry.provenance = "Xavier";
    table.entries.push_back(std::move(entry));
  }

  CausalModelEngine seeded(all.Variables(), model_options);
  ASSERT_EQ(seeded.SeedFromTable(table), all.NumRows());
  seeded.Refresh(model_options.seed);

  CausalModelEngine live(all.Variables(), model_options);
  for (size_t r = 0; r < all.NumRows(); ++r) {
    live.AddRow(all.Row(r));
  }
  live.Refresh(model_options.seed);

  EXPECT_TRUE(GraphsIdentical(seeded.model().admg, live.model().admg));
  EXPECT_EQ(seeded.model().independence_tests, live.model().independence_tests);
  EXPECT_EQ(seeded.model().circle_marks_resolved, live.model().circle_marks_resolved);

  // Provenance split: seeded rows are source, live rows are target.
  EXPECT_EQ(seeded.ProvenanceRows(RowProvenance::kSource), all.NumRows());
  EXPECT_EQ(seeded.ProvenanceRows(RowProvenance::kTarget), 0u);
  EXPECT_EQ(live.ProvenanceRows(RowProvenance::kTarget), all.NumRows());
  EXPECT_EQ(seeded.provenance_of(0), RowProvenance::kSource);
}

// Shape validation happens at the engine layer too: a table for a different
// task must be rejected wholesale, leaving the engine untouched.
TEST(EngineTest, SeedFromTableRejectsShapeMismatch) {
  const DataTable all = MeasuredData(SystemId::kX264, 10, 22, 5);
  size_t options = 0;
  for (const Variable& v : all.Variables()) {
    options += v.role == VarRole::kOption ? 1 : 0;
  }

  CausalModelEngine engine(all.Variables(), SmallModelOptions());
  {
    MeasurementTable wrong_width;  // variable count off by one
    wrong_width.num_vars = all.NumVars() + 1;
    wrong_width.num_options = options;
    wrong_width.entries.push_back(
        {std::vector<double>(options, 0.0), std::vector<double>(all.NumVars() + 1, 0.0), ""});
    EXPECT_EQ(engine.SeedFromTable(wrong_width), 0u);
  }
  {
    MeasurementTable wrong_options;  // same width, different task shape
    wrong_options.num_vars = all.NumVars();
    wrong_options.num_options = options + 1;
    wrong_options.entries.push_back(
        {std::vector<double>(options + 1, 0.0), std::vector<double>(all.NumVars(), 0.0), ""});
    EXPECT_EQ(engine.SeedFromTable(wrong_options), 0u);
  }
  EXPECT_EQ(engine.SeedFromFile("/nonexistent/path.csv"), 0u);
  EXPECT_EQ(engine.data().NumRows(), 0u);
  EXPECT_EQ(engine.ProvenanceRows(RowProvenance::kSource), 0u);
}

TEST(EngineTest, ParallelRefreshBitIdenticalToSerial) {
  const DataTable data = MeasuredData(SystemId::kXception, 200, 12);
  const CausalModelOptions model_options = SmallModelOptions();

  EngineOptions serial;
  serial.num_threads = 1;
  CausalModelEngine one(data.Variables(), model_options, serial);
  one.AppendRows(data);
  one.Refresh(model_options.seed);

  EngineOptions parallel;
  parallel.num_threads = 4;
  CausalModelEngine four(data.Variables(), model_options, parallel);
  four.AppendRows(data);
  four.Refresh(model_options.seed);

  EXPECT_TRUE(GraphsIdentical(one.model().admg, four.model().admg));
  EXPECT_EQ(one.model().independence_tests, four.model().independence_tests);
}

TEST(EngineTest, RepeatedRefreshOnUnchangedDataIsAllCacheHits) {
  const DataTable data = MeasuredData(SystemId::kBert, 150, 13);
  CausalModelEngine engine(data.Variables(), SmallModelOptions());
  engine.AppendRows(data);
  engine.Refresh(99);
  const long long first_evaluated = engine.stats().tests_evaluated;
  EXPECT_GT(first_evaluated, 0);
  EXPECT_EQ(engine.stats().tests_requested,
            engine.stats().tests_evaluated + engine.stats().cache_hits);

  const MixedGraph before = engine.model().admg;
  engine.Refresh(99);  // no new rows: every p-value must come from the cache
  EXPECT_EQ(engine.stats().tests_evaluated, 0);
  EXPECT_EQ(engine.stats().cache_hits, engine.stats().tests_requested);
  EXPECT_TRUE(GraphsIdentical(before, engine.model().admg));
}

TEST(EngineTest, WarmRefreshShrinksTestsAndAnchorsRestoreExactness) {
  const DataTable all = MeasuredData(SystemId::kX264, 160, 14);
  const CausalModelOptions model_options = SmallModelOptions();

  EngineOptions incremental;
  incremental.stale_epsilon = 0.05;
  incremental.full_refresh_every = 4;
  CausalModelEngine engine(all.Variables(), model_options, incremental);

  std::vector<size_t> head;
  for (size_t r = 0; r < 120; ++r) {
    head.push_back(r);
  }
  engine.AppendRows(all.SelectRows(head));
  engine.Refresh(7);  // refresh 0: full (anchor)
  const long long full_requested = engine.stats().tests_requested;
  EXPECT_FALSE(engine.stats().warm);

  long long warm_requested_total = 0;
  size_t warm_refreshes = 0;
  for (size_t r = 120; r < all.NumRows(); ++r) {
    engine.AddRow(all.Row(r));
    engine.Refresh(7 + r);
    if (engine.stats().warm) {
      ++warm_refreshes;
      warm_requested_total += engine.stats().tests_requested;
      EXPECT_GT(engine.stats().pairs_reused, 0u);
    }
    EXPECT_TRUE(engine.model().admg.IsAdmg());
  }
  ASSERT_GT(warm_refreshes, 0u);
  // Warm refreshes must re-test far fewer pairs than the full anchor sweep.
  EXPECT_LT(warm_requested_total / static_cast<long long>(warm_refreshes), full_requested);

  // An anchor refresh (refresh count divisible by full_refresh_every) is a
  // full relearn: identical to from-scratch on the same data and seed.
  while (engine.stats().refreshes % incremental.full_refresh_every != 0) {
    engine.Refresh(42);
  }
  engine.Refresh(42);
  EXPECT_FALSE(engine.stats().warm);
  CausalModelOptions scratch_options = model_options;
  scratch_options.seed = 42;
  const LearnedModel scratch = LearnCausalPerformanceModel(engine.data(), scratch_options);
  EXPECT_TRUE(GraphsIdentical(engine.model().admg, scratch.admg));
}

TEST(EngineTest, CITestsSnapshotRowsUntilUpdate) {
  const DataTable all = MeasuredData(SystemId::kX264, 120, 16);
  std::vector<size_t> head;
  for (size_t r = 0; r < 100; ++r) {
    head.push_back(r);
  }
  DataTable grown = all.SelectRows(head);
  CompositeTest test(grown);
  const double fisher_before = test.PValue(0, 1, {2});
  const double gsq_before = test.PValue(0, 2, {1});
  // Appending rows without Update() must not change (or crash) the test:
  // it reasons on the construction-time snapshot.
  for (size_t r = 100; r < all.NumRows(); ++r) {
    grown.AddRow(all.Row(r));
  }
  EXPECT_DOUBLE_EQ(test.PValue(0, 1, {2}), fisher_before);
  EXPECT_DOUBLE_EQ(test.PValue(0, 2, {1}), gsq_before);
  // After Update the new rows are visible and p-values stay well-formed.
  test.Update(grown);
  const double after = test.PValue(0, 1, {2});
  EXPECT_GE(after, 0.0);
  EXPECT_LE(after, 1.0);
}

TEST(EngineTest, StreamingMomentsMatchBatchStatistics) {
  Rng rng(21);
  StreamingMoments moments(3);
  std::vector<std::vector<double>> cols(3);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.Uniform(-2.0, 2.0);
    const double b = 0.7 * a + 0.1 * rng.Uniform();
    const double c = rng.Uniform();
    moments.AddRow({a, b, c});
    cols[0].push_back(a);
    cols[1].push_back(b);
    cols[2].push_back(c);
  }
  EXPECT_EQ(moments.NumRows(), 500u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      EXPECT_NEAR(moments.Pearson(i, j), PearsonCorrelation(cols[i], cols[j]), 1e-9);
    }
  }
  EXPECT_GT(moments.Pearson(0, 1), 0.9);
  EXPECT_LT(std::fabs(moments.Pearson(0, 2)), 0.2);
}

TEST(EngineTest, EstimatorAndQueryRideTheCurrentModel) {
  const DataTable data = MeasuredData(SystemId::kX264, 150, 15);
  CausalModelEngine engine(data.Variables(), SmallModelOptions());
  engine.AppendRows(data);
  engine.Refresh();
  const CausalEffectEstimator& estimator = engine.Estimator();
  // The lazily built estimator is cached until the next refresh.
  EXPECT_EQ(&estimator, &engine.Estimator());
  engine.Refresh();
  EXPECT_TRUE(engine.HasModel());
  EXPECT_GT(engine.stats().refreshes, 1u);
}

}  // namespace
}  // namespace unicorn
