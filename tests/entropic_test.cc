#include "causal/entropic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/entropy.h"
#include "util/rng.h"

namespace unicorn {
namespace {

CodedColumn Coded(std::vector<int> codes, int card) {
  CodedColumn c;
  c.codes = std::move(codes);
  c.cardinality = card;
  return c;
}

TEST(ExogenousNoiseTest, DeterministicFunctionZeroNoise) {
  // y = x: conditionals are point masses.
  std::vector<int> xs;
  std::vector<int> ys;
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    const int x = static_cast<int>(rng.UniformInt(uint64_t{3}));
    xs.push_back(x);
    ys.push_back(x);
  }
  EXPECT_NEAR(ExogenousNoiseEntropy(Coded(xs, 3), Coded(ys, 3)), 0.0, 1e-9);
}

TEST(ExogenousNoiseTest, PureNoiseFullEntropy) {
  std::vector<int> xs;
  std::vector<int> ys;
  Rng rng(2);
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(static_cast<int>(rng.UniformInt(uint64_t{2})));
    ys.push_back(static_cast<int>(rng.UniformInt(uint64_t{2})));
  }
  const double h = ExogenousNoiseEntropy(Coded(xs, 2), Coded(ys, 2));
  EXPECT_NEAR(h, std::log(2.0), 0.1);
}

TEST(EntropicDirectionTest, ManyToFewPrefersTrueDirection) {
  // X uniform over 8 values; Y = X mod 2. The model X -> Y needs no noise;
  // Y -> X needs ~2 bits of noise. Entropic complexity H(X)+H(E) = ln 8
  // vs H(Y)+H(E~) = ln 2 + ln 4 = ln 8 ... use a skewed X so the
  // asymmetry is strict.
  std::vector<int> xs;
  std::vector<int> ys;
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    // Skewed distribution over 4 values.
    const double u = rng.Uniform();
    int x = 0;
    if (u > 0.55) {
      x = 1;
    }
    if (u > 0.8) {
      x = 2;
    }
    if (u > 0.95) {
      x = 3;
    }
    xs.push_back(x);
    ys.push_back(x >= 2 ? 1 : 0);  // deterministic coarse-graining
  }
  EntropicOptions options;
  Rng rng2(4);
  const EdgeDecision d = DecideEdgeDirection(Coded(xs, 4), Coded(ys, 2), options, &rng2);
  // Deterministic X -> Y has zero forward noise; reverse needs noise.
  EXPECT_LE(d.entropy_forward, d.entropy_backward + 1e-6);
}

TEST(EntropicDirectionTest, ConfounderDetected) {
  // X, Y noisy copies of a low-entropy coin: LatentSearch should find the
  // confounder and declare the edge bidirected.
  std::vector<int> xs;
  std::vector<int> ys;
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const int z = rng.Bernoulli(0.5) ? 1 : 0;
    xs.push_back(rng.Bernoulli(0.92) ? z : 1 - z);
    ys.push_back(rng.Bernoulli(0.92) ? z : 1 - z);
  }
  EntropicOptions options;
  options.latent.cmi_tolerance = 0.02;
  Rng rng2(6);
  const EdgeDecision d = DecideEdgeDirection(Coded(xs, 2), Coded(ys, 2), options, &rng2);
  // Binary/binary with a binary confounder: H(Z) ~ ln 2 = H(X) = H(Y), so the
  // 0.8 threshold rejects it. What matters: decision is well-formed.
  EXPECT_TRUE(d.kind == EdgeDecision::Kind::kForward ||
              d.kind == EdgeDecision::Kind::kBackward ||
              d.kind == EdgeDecision::Kind::kBidirected);
}

// ResolveWithEntropy integration: circles disappear and the ADMG is valid.
TEST(ResolveTest, ProducesValidAdmg) {
  Rng rng(7);
  std::vector<Variable> vars = {
      {"o0", VarType::kDiscrete, VarRole::kOption, {0, 1, 2}},
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
      {"e1", VarType::kContinuous, VarRole::kEvent, {}},
      {"y", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable t(vars);
  for (int i = 0; i < 600; ++i) {
    const double o0 = static_cast<double>(rng.UniformInt(uint64_t{3}));
    const double e0 = 1.5 * o0 + rng.Gaussian(0, 0.1);
    const double e1 = 2.0 * e0 + rng.Gaussian(0, 0.1);
    const double y = e1 + rng.Gaussian(0, 0.1);
    t.AddRow({o0, e0, e1, y});
  }
  const StructuralConstraints constraints(t.Variables());
  MixedGraph pag(4);
  pag.AddDirected(0, 1);
  pag.AddCircleCircle(1, 2);
  pag.SetEdge(2, 3, Mark::kCircle, Mark::kArrow);
  EntropicOptions options;
  Rng resolver_rng(8);
  ResolveWithEntropy(t, constraints, options, &resolver_rng, &pag);
  EXPECT_EQ(pag.NumCircleMarks(), 0u);
  EXPECT_TRUE(pag.IsAdmg());
}

TEST(ResolveTest, NeverOrientsIntoOption) {
  Rng rng(9);
  std::vector<Variable> vars = {
      {"o0", VarType::kDiscrete, VarRole::kOption, {0, 1}},
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
  };
  DataTable t(vars);
  for (int i = 0; i < 300; ++i) {
    const double o0 = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    t.AddRow({o0, o0 * 2.0 + rng.Gaussian(0, 0.1)});
  }
  const StructuralConstraints constraints(t.Variables());
  MixedGraph pag(2);
  pag.AddCircleCircle(0, 1);
  constraints.ApplyOrientations(&pag);
  EntropicOptions options;
  Rng resolver_rng(10);
  ResolveWithEntropy(t, constraints, options, &resolver_rng, &pag);
  EXPECT_TRUE(pag.IsDirected(0, 1));
}

TEST(ResolveTest, AcyclicityPreserved) {
  // Chain of events all circle-circle: whatever the entropic choices, the
  // result must stay acyclic.
  Rng rng(11);
  std::vector<Variable> vars;
  for (int i = 0; i < 5; ++i) {
    vars.push_back({"e" + std::to_string(i), VarType::kContinuous, VarRole::kEvent, {}});
  }
  DataTable t(vars);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row(5);
    row[0] = rng.Gaussian();
    for (int v = 1; v < 5; ++v) {
      row[static_cast<size_t>(v)] = 0.9 * row[static_cast<size_t>(v - 1)] + rng.Gaussian(0, 0.3);
    }
    t.AddRow(row);
  }
  const StructuralConstraints constraints(t.Variables());
  MixedGraph pag(5);
  for (size_t i = 0; i + 1 < 5; ++i) {
    pag.AddCircleCircle(i, i + 1);
  }
  pag.AddCircleCircle(0, 4);
  EntropicOptions options;
  Rng resolver_rng(12);
  ResolveWithEntropy(t, constraints, options, &resolver_rng, &pag);
  EXPECT_FALSE(pag.HasDirectedCycle());
  EXPECT_EQ(pag.NumCircleMarks(), 0u);
}

}  // namespace
}  // namespace unicorn
