#include "stats/entropy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace unicorn {
namespace {

CodedColumn MakeCoded(std::vector<int> codes, int card) {
  CodedColumn c;
  c.codes = std::move(codes);
  c.cardinality = card;
  return c;
}

TEST(EntropyTest, UniformDistributionEntropy) {
  EXPECT_NEAR(DistributionEntropy({1, 1, 1, 1}), std::log(4.0), 1e-12);
}

TEST(EntropyTest, DegenerateDistributionZero) {
  EXPECT_EQ(DistributionEntropy({1, 0, 0}), 0.0);
}

TEST(EntropyTest, UnnormalizedWeightsNormalized) {
  EXPECT_NEAR(DistributionEntropy({10, 10}), std::log(2.0), 1e-12);
}

TEST(EntropyTest, NegativeWeightsIgnored) {
  EXPECT_NEAR(DistributionEntropy({-3, 1, 1}), std::log(2.0), 1e-12);
}

TEST(EntropyTest, EmpiricalEntropyFairCoin) {
  const auto x = MakeCoded({0, 1, 0, 1}, 2);
  EXPECT_NEAR(Entropy(x), std::log(2.0), 1e-12);
}

TEST(EntropyTest, EntropyConstantColumnZero) {
  const auto x = MakeCoded({1, 1, 1}, 2);
  EXPECT_EQ(Entropy(x), 0.0);
}

TEST(EntropyTest, JointEntropyIndependent) {
  // Two independent fair bits: H(X, Y) = 2 ln 2.
  const auto x = MakeCoded({0, 0, 1, 1}, 2);
  const auto y = MakeCoded({0, 1, 0, 1}, 2);
  EXPECT_NEAR(JointEntropy(x, y), 2.0 * std::log(2.0), 1e-12);
}

TEST(EntropyTest, JointEntropyIdenticalEqualsMarginal) {
  const auto x = MakeCoded({0, 1, 0, 1}, 2);
  EXPECT_NEAR(JointEntropy(x, x), Entropy(x), 1e-12);
}

TEST(EntropyTest, MutualInformationIndependentZero) {
  const auto x = MakeCoded({0, 0, 1, 1}, 2);
  const auto y = MakeCoded({0, 1, 0, 1}, 2);
  EXPECT_NEAR(MutualInformation(x, y), 0.0, 1e-12);
}

TEST(EntropyTest, MutualInformationIdenticalEqualsEntropy) {
  const auto x = MakeCoded({0, 1, 0, 1, 1}, 2);
  EXPECT_NEAR(MutualInformation(x, x), Entropy(x), 1e-12);
}

TEST(EntropyTest, MutualInformationNonNegativeRandom) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> xs(200);
    std::vector<int> ys(200);
    for (int i = 0; i < 200; ++i) {
      xs[static_cast<size_t>(i)] = static_cast<int>(rng.UniformInt(uint64_t{3}));
      ys[static_cast<size_t>(i)] = static_cast<int>(rng.UniformInt(uint64_t{3}));
    }
    EXPECT_GE(MutualInformation(MakeCoded(xs, 3), MakeCoded(ys, 3)), 0.0);
  }
}

TEST(EntropyTest, ConditionalMiChainBlocked) {
  // X -> Z -> Y with deterministic links: I(X;Y|Z) = 0, I(X;Y) > 0.
  std::vector<int> xs;
  std::vector<int> zs;
  std::vector<int> ys;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const int x = static_cast<int>(rng.UniformInt(uint64_t{2}));
    const int z = x;
    const int y = z;
    xs.push_back(x);
    zs.push_back(z);
    ys.push_back(y);
  }
  const auto cx = MakeCoded(xs, 2);
  const auto cz = MakeCoded(zs, 2);
  const auto cy = MakeCoded(ys, 2);
  EXPECT_GT(MutualInformation(cx, cy), 0.5);
  EXPECT_NEAR(ConditionalMutualInformation(cx, cy, cz), 0.0, 1e-9);
}

TEST(EntropyTest, ConditionalMiColliderUnblocks) {
  // X, Y independent; Z = X xor Y. Conditioning on Z couples X and Y.
  std::vector<int> xs;
  std::vector<int> ys;
  std::vector<int> zs;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const int x = static_cast<int>(rng.UniformInt(uint64_t{2}));
    const int y = static_cast<int>(rng.UniformInt(uint64_t{2}));
    xs.push_back(x);
    ys.push_back(y);
    zs.push_back(x ^ y);
  }
  const auto cx = MakeCoded(xs, 2);
  const auto cy = MakeCoded(ys, 2);
  const auto cz = MakeCoded(zs, 2);
  EXPECT_LT(MutualInformation(cx, cy), 0.01);
  EXPECT_GT(ConditionalMutualInformation(cx, cy, cz), 0.5);
}

TEST(EntropyTest, JointDistributionSumsToOne) {
  const auto x = MakeCoded({0, 1, 1, 0, 1}, 2);
  const auto y = MakeCoded({0, 0, 1, 1, 1}, 2);
  const auto p = JointDistribution(x, y);
  double total = 0.0;
  for (const auto& row : p) {
    for (double v : row) {
      total += v;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(p[1][1], 0.4, 1e-12);
}

TEST(MinEntropyCouplingTest, IdenticalPointMassesZeroEntropy) {
  // Both conditionals are the same point mass: coupling needs one atom.
  std::vector<std::vector<double>> marginals = {{1.0, 0.0}, {1.0, 0.0}};
  EXPECT_NEAR(GreedyMinimumEntropyCoupling(marginals), 0.0, 1e-12);
}

TEST(MinEntropyCouplingTest, DeterministicFunctionLowEntropy) {
  // Y = f(X): every conditional P(Y|X=x) is a point mass at a different y.
  // A deterministic relation needs zero exogenous noise.
  std::vector<std::vector<double>> marginals = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  EXPECT_NEAR(GreedyMinimumEntropyCoupling(marginals), 0.0, 1e-12);
}

TEST(MinEntropyCouplingTest, UniformConditionalsFullEntropy) {
  // P(Y|X=x) uniform for all x: noise must be uniform too, H = ln 2.
  std::vector<std::vector<double>> marginals = {{0.5, 0.5}, {0.5, 0.5}};
  EXPECT_NEAR(GreedyMinimumEntropyCoupling(marginals), std::log(2.0), 1e-9);
}

TEST(MinEntropyCouplingTest, SingleMarginalIsOwnEntropy) {
  std::vector<std::vector<double>> marginals = {{0.25, 0.75}};
  const double expected = -(0.25 * std::log(0.25) + 0.75 * std::log(0.75));
  EXPECT_NEAR(GreedyMinimumEntropyCoupling(marginals), expected, 1e-9);
}

TEST(MinEntropyCouplingTest, BoundedByMaxMarginalEntropyPlusConstant) {
  // Kocaoglu et al.: greedy coupling entropy <= max_i H(p_i) + 1 bit-ish.
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::vector<double>> marginals(3, std::vector<double>(4));
    double max_h = 0.0;
    for (auto& m : marginals) {
      double total = 0.0;
      for (auto& v : m) {
        v = rng.Uniform(0.01, 1.0);
        total += v;
      }
      for (auto& v : m) {
        v /= total;
      }
      max_h = std::max(max_h, DistributionEntropy(m));
    }
    const double h = GreedyMinimumEntropyCoupling(marginals);
    EXPECT_LE(h, max_h + std::log(4.0));
    EXPECT_GE(h, 0.0);
  }
}

TEST(MinEntropyCouplingTest, EmptyInputZero) {
  EXPECT_EQ(GreedyMinimumEntropyCoupling({}), 0.0);
}

}  // namespace
}  // namespace unicorn
