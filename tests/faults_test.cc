#include "sysmodel/faults.h"

#include <gtest/gtest.h>

#include "sysmodel/systems.h"

namespace unicorn {
namespace {

FaultCuration Curate(size_t n = 1500, double pct = 0.97) {
  SystemSpec spec;
  spec.num_events = 10;
  const SystemModel m = BuildSystem(SystemId::kXception, spec);
  Rng rng(42);
  return CurateFaults(m, Tx2(), DefaultWorkload(), n, &rng, pct);
}

TEST(FaultsTest, SamplesMatchRequestedCount) {
  const auto c = Curate(500);
  EXPECT_EQ(c.samples.NumRows(), 500u);
  EXPECT_EQ(c.configs.size(), 500u);
}

TEST(FaultsTest, ThresholdsAtRequestedPercentile) {
  const auto c = Curate(1000, 0.99);
  ASSERT_EQ(c.thresholds.size(), c.objective_vars.size());
  // ~1% of samples above each threshold.
  for (size_t o = 0; o < c.objective_vars.size(); ++o) {
    size_t above = 0;
    for (size_t r = 0; r < c.samples.NumRows(); ++r) {
      if (c.samples.At(r, c.objective_vars[o]) > c.thresholds[o]) {
        ++above;
      }
    }
    EXPECT_LE(above, 15u);
  }
}

TEST(FaultsTest, FaultsAreTail) {
  const auto c = Curate();
  EXPECT_FALSE(c.faults.empty());
  for (const auto& fault : c.faults) {
    ASSERT_FALSE(fault.objectives.empty());
    for (size_t obj : fault.objectives) {
      // The faulty measurement must exceed the threshold of that objective.
      size_t idx = 0;
      for (size_t o = 0; o < c.objective_vars.size(); ++o) {
        if (c.objective_vars[o] == obj) {
          idx = o;
        }
      }
      EXPECT_GT(fault.measurement[obj], c.thresholds[idx]);
    }
  }
}

TEST(FaultsTest, MostFaultsHaveRootCauses) {
  const auto c = Curate(3000);
  size_t with_causes = 0;
  for (const auto& fault : c.faults) {
    with_causes += fault.root_causes.empty() ? 0 : 1;
  }
  // The tail is dominated by rule-triggered cliffs.
  EXPECT_GT(with_causes, c.faults.size() / 2);
}

TEST(FaultsTest, SingleAndMultiObjectiveSplit) {
  const auto c = Curate(3000);
  const auto single = FaultsOn(c, c.objective_vars[0]);
  const auto multi = MultiObjectiveFaults(c);
  for (const auto& f : single) {
    EXPECT_EQ(f.objectives.size(), 1u);
  }
  for (const auto& f : multi) {
    EXPECT_GT(f.objectives.size(), 1u);
  }
  EXPECT_LE(single.size() + multi.size(), c.faults.size());
}

TEST(FaultsTest, RootCausesSorted) {
  const auto c = Curate(3000);
  for (const auto& f : c.faults) {
    EXPECT_TRUE(std::is_sorted(f.root_causes.begin(), f.root_causes.end()));
  }
}

}  // namespace
}  // namespace unicorn
