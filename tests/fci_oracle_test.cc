// Oracle tests for constraint-based discovery: replace the statistical CI
// test with exact d-separation on a known ground-truth DAG. With a perfect
// oracle, the skeleton must equal the true adjacency structure and the
// orientation machinery must respect every sound implication — the canonical
// correctness check for PC/FCI implementations.
#include <algorithm>

#include <gtest/gtest.h>

#include "causal/fci.h"
#include "graph/algorithms.h"
#include "util/rng.h"

namespace unicorn {
namespace {

// CI oracle backed by d-separation on a DAG.
class DSepOracle : public CITest {
 public:
  explicit DSepOracle(const MixedGraph& dag) : dag_(dag) {}

  double PValue(int x, int y, const std::vector<int>& s) const override {
    ++calls;
    std::vector<size_t> z(s.begin(), s.end());
    return DSeparated(dag_, static_cast<size_t>(x), static_cast<size_t>(y), z) ? 1.0 : 0.0;
  }

 private:
  const MixedGraph& dag_;
};

// Random sparse DAG over options -> events -> objectives.
struct OracleWorld {
  MixedGraph dag;
  std::vector<Variable> vars;
};

OracleWorld RandomWorld(size_t options, size_t events, size_t objectives, uint64_t seed) {
  OracleWorld world;
  const size_t n = options + events + objectives;
  world.dag = MixedGraph(n);
  world.vars.resize(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    world.vars[i].name = "v" + std::to_string(i);
    world.vars[i].type = VarType::kContinuous;
    world.vars[i].role = i < options                ? VarRole::kOption
                         : i < options + events     ? VarRole::kEvent
                                                    : VarRole::kObjective;
    if (world.vars[i].role == VarRole::kOption) {
      world.vars[i].domain = {0, 1};
    }
  }
  // Events: 1-3 parents among options and earlier events.
  for (size_t e = options; e < options + events; ++e) {
    const size_t num_parents = 1 + rng.UniformInt(uint64_t{3});
    for (size_t p = 0; p < num_parents; ++p) {
      const size_t parent = rng.UniformInt(static_cast<uint64_t>(e));
      if (parent != e && !world.dag.HasEdge(parent, e) &&
          world.vars[parent].role != VarRole::kObjective) {
        world.dag.AddDirected(parent, e);
      }
    }
  }
  // Objectives: 2-3 event parents.
  for (size_t o = options + events; o < n; ++o) {
    const size_t num_parents = 2 + rng.UniformInt(uint64_t{2});
    for (size_t p = 0; p < num_parents && events > 0; ++p) {
      const size_t parent = options + rng.UniformInt(static_cast<uint64_t>(events));
      if (!world.dag.HasEdge(parent, o)) {
        world.dag.AddDirected(parent, o);
      }
    }
  }
  return world;
}

class OracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleSweep, SkeletonMatchesTrueAdjacencies) {
  const OracleWorld world = RandomWorld(5, 6, 2, GetParam());
  const StructuralConstraints constraints(world.vars);
  const DSepOracle oracle(world.dag);
  SkeletonOptions options;
  options.max_cond_size = 6;
  options.max_subsets = 4096;
  const SkeletonResult result = LearnSkeleton(oracle, constraints, world.dag.NumNodes(), options);
  for (size_t a = 0; a < world.dag.NumNodes(); ++a) {
    for (size_t b = a + 1; b < world.dag.NumNodes(); ++b) {
      // Note: objectives are excluded from conditioning sets by design; with
      // objectives as pure sinks this does not change separability of
      // non-objective pairs.
      EXPECT_EQ(result.graph.HasEdge(a, b), world.dag.HasEdge(a, b))
          << "pair (" << a << ", " << b << ") seed " << GetParam();
    }
  }
}

TEST_P(OracleSweep, FciOrientationsNeverContradictTruth) {
  const OracleWorld world = RandomWorld(5, 6, 2, GetParam() + 100);
  const StructuralConstraints constraints(world.vars);
  const DSepOracle oracle(world.dag);
  FciOptions options;
  options.skeleton.max_cond_size = 6;
  options.skeleton.max_subsets = 4096;
  options.max_pds_cond_size = 3;
  const FciResult result = RunFci(oracle, constraints, world.dag.NumNodes(), options);
  // Soundness: a definite directed edge a -> b in the PAG implies b is NOT
  // an ancestor of a in the truth (arrowheads are ancestral statements).
  for (size_t a = 0; a < world.dag.NumNodes(); ++a) {
    const auto ancestors = Ancestors(world.dag, a);
    for (size_t b = 0; b < world.dag.NumNodes(); ++b) {
      if (a == b || !result.pag.IsDirected(a, b)) {
        continue;
      }
      EXPECT_EQ(std::find(ancestors.begin(), ancestors.end(), b), ancestors.end())
          << "PAG claims " << a << " -> " << b << " but " << b << " is an ancestor of " << a;
    }
  }
}

TEST_P(OracleSweep, VStructuresRecovered) {
  const OracleWorld world = RandomWorld(5, 6, 2, GetParam() + 200);
  const StructuralConstraints constraints(world.vars);
  const DSepOracle oracle(world.dag);
  FciOptions options;
  options.skeleton.max_cond_size = 6;
  options.skeleton.max_subsets = 4096;
  const FciResult result = RunFci(oracle, constraints, world.dag.NumNodes(), options);
  // Every unshielded collider of the truth must carry arrowheads in the PAG.
  const size_t n = world.dag.NumNodes();
  for (size_t z = 0; z < n; ++z) {
    const auto parents = world.dag.Parents(z);
    for (size_t i = 0; i < parents.size(); ++i) {
      for (size_t j = i + 1; j < parents.size(); ++j) {
        const size_t x = parents[i];
        const size_t y = parents[j];
        if (world.dag.HasEdge(x, y)) {
          continue;  // shielded
        }
        ASSERT_TRUE(result.pag.HasEdge(x, z));
        ASSERT_TRUE(result.pag.HasEdge(y, z));
        EXPECT_TRUE(result.pag.HasArrowAt(x, z))
            << "missing arrowhead at collider " << z << " from " << x;
        EXPECT_TRUE(result.pag.HasArrowAt(y, z))
            << "missing arrowhead at collider " << z << " from " << y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace unicorn
