#include "causal/fci.h"

#include <gtest/gtest.h>

#include "stats/ci_cache.h"
#include "sysmodel/systems.h"
#include "util/rng.h"

namespace unicorn {
namespace {

// Collider system: o0 -> e0 <- o1, e0 -> y.
DataTable ColliderData(size_t n, Rng* rng) {
  std::vector<Variable> vars = {
      {"o0", VarType::kContinuous, VarRole::kOption, {0, 1}},
      {"o1", VarType::kContinuous, VarRole::kOption, {0, 1}},
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
      {"y", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable t(vars);
  for (size_t i = 0; i < n; ++i) {
    const double o0 = rng->Uniform();
    const double o1 = rng->Uniform();
    const double e0 = 1.8 * o0 + 2.2 * o1 + rng->Gaussian(0, 0.05);
    const double y = 2.5 * e0 + rng->Gaussian(0, 0.05);
    t.AddRow({o0, o1, e0, y});
  }
  return t;
}

TEST(FciTest, OrientsOptionEdgesIntoEvents) {
  Rng rng(21);
  const DataTable data = ColliderData(1000, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const FciResult result = RunFci(test, constraints, data.NumVars());
  // Background knowledge: options are exogenous -> tail at option, arrow at
  // event.
  EXPECT_TRUE(result.pag.HasEdge(0, 2));
  EXPECT_EQ(result.pag.EndMark(2, 0), Mark::kTail);
  EXPECT_EQ(result.pag.EndMark(0, 2), Mark::kArrow);
}

TEST(FciTest, ArrowIntoObjective) {
  Rng rng(22);
  const DataTable data = ColliderData(1000, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const FciResult result = RunFci(test, constraints, data.NumVars());
  ASSERT_TRUE(result.pag.HasEdge(2, 3));
  EXPECT_EQ(result.pag.EndMark(2, 3), Mark::kArrow);
}

TEST(FciTest, RemovesMediatedEdge) {
  Rng rng(23);
  const DataTable data = ColliderData(1500, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const FciResult result = RunFci(test, constraints, data.NumVars());
  EXPECT_FALSE(result.pag.HasEdge(0, 3));
  EXPECT_FALSE(result.pag.HasEdge(1, 3));
}

TEST(VStructureTest, OrientsCollider) {
  // Hand-built skeleton x - z - y with sepset(x, y) = {} (z not in it).
  MixedGraph g(3);
  g.AddCircleCircle(0, 2);
  g.AddCircleCircle(1, 2);
  SepsetMap sepsets;
  sepsets.Set(0, 1, {});
  OrientVStructures(sepsets, &g);
  EXPECT_EQ(g.EndMark(0, 2), Mark::kArrow);
  EXPECT_EQ(g.EndMark(1, 2), Mark::kArrow);
}

TEST(VStructureTest, NoOrientationWhenInSepset) {
  MixedGraph g(3);
  g.AddCircleCircle(0, 2);
  g.AddCircleCircle(1, 2);
  SepsetMap sepsets;
  sepsets.Set(0, 1, {2});  // z separates x and y -> chain, not collider
  OrientVStructures(sepsets, &g);
  EXPECT_EQ(g.EndMark(0, 2), Mark::kCircle);
  EXPECT_EQ(g.EndMark(1, 2), Mark::kCircle);
}

TEST(PossibleDSepTest, CollidersExtendReach) {
  // 0 *-> 1 <-* 2 (collider at 1): 2 is in pds(0) through the collider.
  MixedGraph g(3);
  g.SetEdge(0, 1, Mark::kCircle, Mark::kArrow);
  g.SetEdge(2, 1, Mark::kCircle, Mark::kArrow);
  const auto pds = PossibleDSep(g, 0);
  EXPECT_NE(std::find(pds.begin(), pds.end(), 1u), pds.end());
  EXPECT_NE(std::find(pds.begin(), pds.end(), 2u), pds.end());
}

TEST(PossibleDSepTest, NonColliderChainStops) {
  // 0 o-o 1 o-o 2 with no collider and no triangle: 2 not reachable.
  MixedGraph g(3);
  g.AddCircleCircle(0, 1);
  g.AddCircleCircle(1, 2);
  const auto pds = PossibleDSep(g, 0);
  EXPECT_NE(std::find(pds.begin(), pds.end(), 1u), pds.end());
  EXPECT_EQ(std::find(pds.begin(), pds.end(), 2u), pds.end());
}

TEST(PossibleDSepTest, TriangleExtends) {
  MixedGraph g(3);
  g.AddCircleCircle(0, 1);
  g.AddCircleCircle(1, 2);
  g.AddCircleCircle(0, 2);
  const auto pds = PossibleDSep(g, 0);
  EXPECT_EQ(pds.size(), 2u);
}

TEST(RulesTest, R1OrientsChainAwayFromCollider) {
  // a *-> b o-o c with a, c non-adjacent: R1 gives b -> c.
  MixedGraph g(3);
  g.SetEdge(0, 1, Mark::kCircle, Mark::kArrow);
  g.AddCircleCircle(1, 2);
  SepsetMap sepsets;
  ApplyOrientationRules(sepsets, &g);
  EXPECT_TRUE(g.IsDirected(1, 2));
}

TEST(RulesTest, R2OrientsTransitive) {
  // a -> b -> c and a o-o c: arrow at c on a-c.
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.AddDirected(1, 2);
  g.AddCircleCircle(0, 2);
  SepsetMap sepsets;
  ApplyOrientationRules(sepsets, &g);
  EXPECT_EQ(g.EndMark(0, 2), Mark::kArrow);
}

TEST(FciTest, LatentConfounderLeavesSharedEdgeStructure) {
  // Two events share a hidden cause (not in the table): e0 <- L -> e1.
  // FCI must keep e0 - e1 adjacent but cannot orient it as a clean
  // directed edge from observational data alone.
  Rng rng(24);
  std::vector<Variable> vars = {
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
      {"e1", VarType::kContinuous, VarRole::kEvent, {}},
  };
  DataTable t(vars);
  for (int i = 0; i < 800; ++i) {
    const double latent = rng.Gaussian();
    t.AddRow({latent + rng.Gaussian(0, 0.3), -latent + rng.Gaussian(0, 0.3)});
  }
  const StructuralConstraints constraints(t.Variables());
  const CompositeTest test(t);
  const FciResult result = RunFci(test, constraints, t.NumVars());
  EXPECT_TRUE(result.pag.HasEdge(0, 1));
}

TEST(FciTest, PdsStageCanBeDisabled) {
  Rng rng(25);
  const DataTable data = ColliderData(500, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  FciOptions options;
  options.use_possible_dsep = false;
  const FciResult result = RunFci(test, constraints, data.NumVars(), options);
  EXPECT_TRUE(result.pag.HasEdge(0, 2));
}

// --- caching / parallel / warm-start equivalences ---------------------------

struct World {
  DataTable data;
  std::vector<Variable> vars;
};

World MeasuredWorld(SystemId id, size_t rows, uint64_t seed) {
  SystemSpec spec;
  spec.num_events = 8;
  const auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < rows; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  World world;
  world.data = model->MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  world.vars = world.data.Variables();
  return world;
}

FciOptions SmallFciOptions() {
  FciOptions options;
  options.skeleton.max_cond_size = 2;
  options.skeleton.max_subsets = 16;
  options.max_pds_cond_size = 1;
  return options;
}

::testing::AssertionResult SameMarks(const MixedGraph& a, const MixedGraph& b) {
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    for (size_t j = 0; j < a.NumNodes(); ++j) {
      if (a.EndMark(i, j) != b.EndMark(i, j)) {
        return ::testing::AssertionFailure() << "marks differ at (" << i << ", " << j << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(FciTest, CachedRunMatchesUncachedRun) {
  const World world = MeasuredWorld(SystemId::kXception, 220, 5);
  const StructuralConstraints constraints(world.vars);
  const FciOptions options = SmallFciOptions();

  const CompositeTest plain(world.data);
  const FciResult uncached = RunFci(plain, constraints, world.data.NumVars(), options);

  const CompositeTest inner(world.data);
  CICache cache;
  const CachedCITest cached(inner, &cache, world.data.NumRows());
  const FciResult with_cache = RunFci(cached, constraints, world.data.NumVars(), options);

  EXPECT_TRUE(SameMarks(uncached.pag, with_cache.pag));
  // Requested counts are identical; the cache only removes duplicate
  // evaluations, visible as inner calls < requested calls.
  EXPECT_EQ(uncached.tests_performed, with_cache.tests_performed);
  EXPECT_LT(inner.calls, cached.calls);
  EXPECT_EQ(cache.hits() + inner.calls, cached.calls);
}

TEST(FciTest, ParallelSkeletonBitIdenticalToSerial) {
  const World world = MeasuredWorld(SystemId::kDeepspeech, 250, 6);
  const StructuralConstraints constraints(world.vars);
  const CompositeTest test(world.data);

  SkeletonOptions serial;
  serial.max_cond_size = 2;
  serial.max_subsets = 16;
  serial.num_threads = 1;
  const SkeletonResult one = LearnSkeleton(test, constraints, world.data.NumVars(), serial);

  SkeletonOptions threaded = serial;
  threaded.num_threads = 4;
  const SkeletonResult four = LearnSkeleton(test, constraints, world.data.NumVars(), threaded);

  EXPECT_TRUE(SameMarks(one.graph, four.graph));
  EXPECT_EQ(one.tests_performed, four.tests_performed);
  for (size_t a = 0; a < world.data.NumVars(); ++a) {
    for (size_t b = a + 1; b < world.data.NumVars(); ++b) {
      const auto* sa = one.sepsets.Get(a, b);
      const auto* sb = four.sepsets.Get(a, b);
      ASSERT_EQ(sa == nullptr, sb == nullptr) << "sepset presence differs at " << a << "," << b;
      if (sa != nullptr) {
        EXPECT_EQ(*sa, *sb);
      }
    }
  }
}

TEST(FciTest, AllDirtyWarmStartEqualsColdStart) {
  const World world = MeasuredWorld(SystemId::kX264, 200, 7);
  const StructuralConstraints constraints(world.vars);
  const CompositeTest test(world.data);
  const FciOptions options = SmallFciOptions();
  const size_t n = world.data.NumVars();

  const FciResult cold = RunFci(test, constraints, n, options);

  // A warm start where every pair is dirty must degenerate to the cold run.
  std::vector<char> all_dirty(n * n, 1);
  SkeletonWarmStart warm;
  warm.graph = &cold.pag;
  warm.sepsets = &cold.sepsets;
  warm.pair_dirty = &all_dirty;
  const FciResult rerun = RunFci(test, constraints, n, options, warm);
  EXPECT_TRUE(SameMarks(cold.pag, rerun.pag));
}

TEST(FciTest, AllCleanWarmStartAdoptsWithoutTesting) {
  const World world = MeasuredWorld(SystemId::kX264, 200, 8);
  const StructuralConstraints constraints(world.vars);
  const CompositeTest test(world.data);
  const FciOptions options = SmallFciOptions();
  const size_t n = world.data.NumVars();

  const FciResult cold = RunFci(test, constraints, n, options);

  std::vector<char> all_clean(n * n, 0);
  SkeletonWarmStart warm;
  warm.graph = &cold.pag;
  warm.sepsets = &cold.sepsets;
  warm.pair_dirty = &all_clean;
  const long long calls_before = test.calls;
  const FciResult adopted = RunFci(test, constraints, n, options, warm);
  EXPECT_EQ(test.calls, calls_before);  // not a single CI test issued
  EXPECT_EQ(adopted.tests_performed, 0);
  // Adjacency is adopted wholesale; orientation re-derives from the sepsets.
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      EXPECT_EQ(cold.pag.HasEdge(a, b), adopted.pag.HasEdge(a, b));
    }
  }
}

TEST(CICacheTest, KeyNormalizationAndCounters) {
  CICache cache;
  const auto key = CICache::MakeKey(7, 3, {9, 2, 5}, 100);
  EXPECT_EQ(key.x, 3);
  EXPECT_EQ(key.y, 7);
  ASSERT_EQ(key.s_size, 3u);
  EXPECT_EQ(key.s[0], 2);
  EXPECT_EQ(key.s[1], 5);
  EXPECT_EQ(key.s[2], 9);

  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Store(key, 0.25);
  // Same test asked with swapped endpoints and permuted conditioning set.
  const auto alias = CICache::MakeKey(3, 7, {5, 9, 2}, 100);
  const auto hit = cache.Lookup(alias);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.25);
  // A different row count is a different dataset.
  EXPECT_FALSE(cache.Lookup(CICache::MakeKey(3, 7, {2, 5, 9}, 101)).has_value());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.lookups(), 3);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CICacheTest, CachedTestEvaluatesEachKeyOnce) {
  const World world = MeasuredWorld(SystemId::kBert, 120, 9);
  const CompositeTest inner(world.data);
  CICache cache;
  const CachedCITest cached(inner, &cache, world.data.NumRows());

  const double p1 = cached.PValue(0, 1, {2});
  const long long evaluated_after_first = inner.calls;
  const double p2 = cached.PValue(1, 0, {2});  // symmetric alias
  EXPECT_DOUBLE_EQ(p1, p2);
  EXPECT_EQ(inner.calls, evaluated_after_first);  // served from cache
  EXPECT_EQ(cached.calls, 2);
  EXPECT_EQ(cache.hits(), 1);
}

}  // namespace
}  // namespace unicorn
