#include "causal/fci.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace unicorn {
namespace {

// Collider system: o0 -> e0 <- o1, e0 -> y.
DataTable ColliderData(size_t n, Rng* rng) {
  std::vector<Variable> vars = {
      {"o0", VarType::kContinuous, VarRole::kOption, {0, 1}},
      {"o1", VarType::kContinuous, VarRole::kOption, {0, 1}},
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
      {"y", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable t(vars);
  for (size_t i = 0; i < n; ++i) {
    const double o0 = rng->Uniform();
    const double o1 = rng->Uniform();
    const double e0 = 1.8 * o0 + 2.2 * o1 + rng->Gaussian(0, 0.05);
    const double y = 2.5 * e0 + rng->Gaussian(0, 0.05);
    t.AddRow({o0, o1, e0, y});
  }
  return t;
}

TEST(FciTest, OrientsOptionEdgesIntoEvents) {
  Rng rng(21);
  const DataTable data = ColliderData(1000, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const FciResult result = RunFci(test, constraints, data.NumVars());
  // Background knowledge: options are exogenous -> tail at option, arrow at
  // event.
  EXPECT_TRUE(result.pag.HasEdge(0, 2));
  EXPECT_EQ(result.pag.EndMark(2, 0), Mark::kTail);
  EXPECT_EQ(result.pag.EndMark(0, 2), Mark::kArrow);
}

TEST(FciTest, ArrowIntoObjective) {
  Rng rng(22);
  const DataTable data = ColliderData(1000, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const FciResult result = RunFci(test, constraints, data.NumVars());
  ASSERT_TRUE(result.pag.HasEdge(2, 3));
  EXPECT_EQ(result.pag.EndMark(2, 3), Mark::kArrow);
}

TEST(FciTest, RemovesMediatedEdge) {
  Rng rng(23);
  const DataTable data = ColliderData(1500, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const FciResult result = RunFci(test, constraints, data.NumVars());
  EXPECT_FALSE(result.pag.HasEdge(0, 3));
  EXPECT_FALSE(result.pag.HasEdge(1, 3));
}

TEST(VStructureTest, OrientsCollider) {
  // Hand-built skeleton x - z - y with sepset(x, y) = {} (z not in it).
  MixedGraph g(3);
  g.AddCircleCircle(0, 2);
  g.AddCircleCircle(1, 2);
  SepsetMap sepsets;
  sepsets.Set(0, 1, {});
  OrientVStructures(sepsets, &g);
  EXPECT_EQ(g.EndMark(0, 2), Mark::kArrow);
  EXPECT_EQ(g.EndMark(1, 2), Mark::kArrow);
}

TEST(VStructureTest, NoOrientationWhenInSepset) {
  MixedGraph g(3);
  g.AddCircleCircle(0, 2);
  g.AddCircleCircle(1, 2);
  SepsetMap sepsets;
  sepsets.Set(0, 1, {2});  // z separates x and y -> chain, not collider
  OrientVStructures(sepsets, &g);
  EXPECT_EQ(g.EndMark(0, 2), Mark::kCircle);
  EXPECT_EQ(g.EndMark(1, 2), Mark::kCircle);
}

TEST(PossibleDSepTest, CollidersExtendReach) {
  // 0 *-> 1 <-* 2 (collider at 1): 2 is in pds(0) through the collider.
  MixedGraph g(3);
  g.SetEdge(0, 1, Mark::kCircle, Mark::kArrow);
  g.SetEdge(2, 1, Mark::kCircle, Mark::kArrow);
  const auto pds = PossibleDSep(g, 0);
  EXPECT_NE(std::find(pds.begin(), pds.end(), 1u), pds.end());
  EXPECT_NE(std::find(pds.begin(), pds.end(), 2u), pds.end());
}

TEST(PossibleDSepTest, NonColliderChainStops) {
  // 0 o-o 1 o-o 2 with no collider and no triangle: 2 not reachable.
  MixedGraph g(3);
  g.AddCircleCircle(0, 1);
  g.AddCircleCircle(1, 2);
  const auto pds = PossibleDSep(g, 0);
  EXPECT_NE(std::find(pds.begin(), pds.end(), 1u), pds.end());
  EXPECT_EQ(std::find(pds.begin(), pds.end(), 2u), pds.end());
}

TEST(PossibleDSepTest, TriangleExtends) {
  MixedGraph g(3);
  g.AddCircleCircle(0, 1);
  g.AddCircleCircle(1, 2);
  g.AddCircleCircle(0, 2);
  const auto pds = PossibleDSep(g, 0);
  EXPECT_EQ(pds.size(), 2u);
}

TEST(RulesTest, R1OrientsChainAwayFromCollider) {
  // a *-> b o-o c with a, c non-adjacent: R1 gives b -> c.
  MixedGraph g(3);
  g.SetEdge(0, 1, Mark::kCircle, Mark::kArrow);
  g.AddCircleCircle(1, 2);
  SepsetMap sepsets;
  ApplyOrientationRules(sepsets, &g);
  EXPECT_TRUE(g.IsDirected(1, 2));
}

TEST(RulesTest, R2OrientsTransitive) {
  // a -> b -> c and a o-o c: arrow at c on a-c.
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.AddDirected(1, 2);
  g.AddCircleCircle(0, 2);
  SepsetMap sepsets;
  ApplyOrientationRules(sepsets, &g);
  EXPECT_EQ(g.EndMark(0, 2), Mark::kArrow);
}

TEST(FciTest, LatentConfounderLeavesSharedEdgeStructure) {
  // Two events share a hidden cause (not in the table): e0 <- L -> e1.
  // FCI must keep e0 - e1 adjacent but cannot orient it as a clean
  // directed edge from observational data alone.
  Rng rng(24);
  std::vector<Variable> vars = {
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
      {"e1", VarType::kContinuous, VarRole::kEvent, {}},
  };
  DataTable t(vars);
  for (int i = 0; i < 800; ++i) {
    const double latent = rng.Gaussian();
    t.AddRow({latent + rng.Gaussian(0, 0.3), -latent + rng.Gaussian(0, 0.3)});
  }
  const StructuralConstraints constraints(t.Variables());
  const CompositeTest test(t);
  const FciResult result = RunFci(test, constraints, t.NumVars());
  EXPECT_TRUE(result.pag.HasEdge(0, 1));
}

TEST(FciTest, PdsStageCanBeDisabled) {
  Rng rng(25);
  const DataTable data = ColliderData(500, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  FciOptions options;
  options.use_possible_dsep = false;
  const FciResult result = RunFci(test, constraints, data.NumVars(), options);
  EXPECT_TRUE(result.pag.HasEdge(0, 2));
}

}  // namespace
}  // namespace unicorn
