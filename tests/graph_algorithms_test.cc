#include "graph/algorithms.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace unicorn {
namespace {

MixedGraph Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3
  MixedGraph g(4);
  g.AddDirected(0, 1);
  g.AddDirected(0, 2);
  g.AddDirected(1, 3);
  g.AddDirected(2, 3);
  return g;
}

TEST(TopoTest, ValidOrder) {
  const auto order = TopologicalOrder(Diamond());
  ASSERT_TRUE(order.has_value());
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < order->size(); ++i) {
    pos[(*order)[i]] = i;
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(TopoTest, CyclicReturnsNullopt) {
  MixedGraph g(2);
  g.AddDirected(0, 1);
  g.SetEdge(1, 0, Mark::kTail, Mark::kArrow);  // also 1 -> 0 ... overwrites
  // Build a real 3-cycle instead.
  MixedGraph c(3);
  c.AddDirected(0, 1);
  c.AddDirected(1, 2);
  c.AddDirected(2, 0);
  EXPECT_FALSE(TopologicalOrder(c).has_value());
}

TEST(AncestryTest, AncestorsAndDescendants) {
  const auto g = Diamond();
  auto anc = Ancestors(g, 3);
  std::sort(anc.begin(), anc.end());
  EXPECT_EQ(anc, (std::vector<size_t>{0, 1, 2}));
  auto desc = Descendants(g, 0);
  std::sort(desc.begin(), desc.end());
  EXPECT_EQ(desc, (std::vector<size_t>{1, 2, 3}));
  EXPECT_TRUE(Ancestors(g, 0).empty());
  EXPECT_TRUE(Descendants(g, 3).empty());
}

TEST(DSepTest, ChainBlockedByMiddle) {
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.AddDirected(1, 2);
  EXPECT_FALSE(DSeparated(g, 0, 2, {}));
  EXPECT_TRUE(DSeparated(g, 0, 2, {1}));
}

TEST(DSepTest, ForkBlockedByRoot) {
  MixedGraph g(3);
  g.AddDirected(1, 0);
  g.AddDirected(1, 2);
  EXPECT_FALSE(DSeparated(g, 0, 2, {}));
  EXPECT_TRUE(DSeparated(g, 0, 2, {1}));
}

TEST(DSepTest, ColliderBlockedUnlessConditioned) {
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.AddDirected(2, 1);
  EXPECT_TRUE(DSeparated(g, 0, 2, {}));
  EXPECT_FALSE(DSeparated(g, 0, 2, {1}));
}

TEST(DSepTest, ColliderDescendantAlsoUnblocks) {
  // 0 -> 1 <- 2, 1 -> 3: conditioning on 3 (descendant of the collider)
  // unblocks the path.
  MixedGraph g(4);
  g.AddDirected(0, 1);
  g.AddDirected(2, 1);
  g.AddDirected(1, 3);
  EXPECT_TRUE(DSeparated(g, 0, 2, {}));
  EXPECT_FALSE(DSeparated(g, 0, 2, {3}));
}

TEST(DSepTest, DiamondNeedsBothMiddleNodes) {
  const auto g = Diamond();
  EXPECT_FALSE(DSeparated(g, 0, 3, {}));
  EXPECT_FALSE(DSeparated(g, 0, 3, {1}));
  EXPECT_FALSE(DSeparated(g, 0, 3, {2}));
  EXPECT_TRUE(DSeparated(g, 0, 3, {1, 2}));
}

TEST(DSepTest, DisconnectedNodesSeparated) {
  MixedGraph g(4);
  g.AddDirected(0, 1);
  EXPECT_TRUE(DSeparated(g, 0, 3, {}));
}

TEST(PathsTest, DiamondHasTwoPaths) {
  const auto paths = ExtractCausalPaths(Diamond(), 3);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), 0u);  // paths start at the root
    EXPECT_EQ(p.back(), 3u);   // and end at the target
    EXPECT_EQ(p.size(), 3u);
  }
}

TEST(PathsTest, RootFirstOrdering) {
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.AddDirected(1, 2);
  const auto paths = ExtractCausalPaths(g, 2);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (CausalPath{0, 1, 2}));
}

TEST(PathsTest, NoParentsNoPaths) {
  MixedGraph g(2);
  EXPECT_TRUE(ExtractCausalPaths(g, 1).empty());
}

TEST(PathsTest, MaxPathsCap) {
  // Layered graph with exponentially many paths: 2 layers of 3 nodes each.
  MixedGraph g(8);
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 3; b < 6; ++b) {
      g.AddDirected(a, b);
    }
  }
  for (size_t b = 3; b < 6; ++b) {
    g.AddDirected(b, 6);
  }
  const auto capped = ExtractCausalPaths(g, 6, 4);
  EXPECT_LE(capped.size(), 4u);
  const auto all = ExtractCausalPaths(g, 6);
  EXPECT_EQ(all.size(), 9u);
}

TEST(ShdTest, IdenticalGraphsZero) {
  EXPECT_EQ(StructuralHammingDistance(Diamond(), Diamond()), 0u);
}

TEST(ShdTest, MissingEdgeCountsOne) {
  auto a = Diamond();
  auto b = Diamond();
  b.RemoveEdge(0, 1);
  EXPECT_EQ(StructuralHammingDistance(a, b), 1u);
}

TEST(ShdTest, FlippedOrientationCountsOne) {
  MixedGraph a(2);
  a.AddDirected(0, 1);
  MixedGraph b(2);
  b.AddDirected(1, 0);
  EXPECT_EQ(StructuralHammingDistance(a, b), 1u);
}

TEST(ShdTest, MarkDifferenceCountsOne) {
  MixedGraph a(2);
  a.AddDirected(0, 1);
  MixedGraph b(2);
  b.AddBidirected(0, 1);
  EXPECT_EQ(StructuralHammingDistance(a, b), 1u);
}

}  // namespace
}  // namespace unicorn
