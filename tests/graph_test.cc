#include "graph/mixed_graph.h"

#include <gtest/gtest.h>

namespace unicorn {
namespace {

TEST(MixedGraphTest, EmptyGraph) {
  MixedGraph g(4);
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(MixedGraphTest, DirectedEdgeMarks) {
  MixedGraph g(3);
  g.AddDirected(0, 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // existence is symmetric
  EXPECT_TRUE(g.IsDirected(0, 1));
  EXPECT_FALSE(g.IsDirected(1, 0));
  EXPECT_EQ(g.EndMark(0, 1), Mark::kArrow);
  EXPECT_EQ(g.EndMark(1, 0), Mark::kTail);
}

TEST(MixedGraphTest, BidirectedEdge) {
  MixedGraph g(3);
  g.AddBidirected(0, 2);
  EXPECT_TRUE(g.IsBidirected(0, 2));
  EXPECT_TRUE(g.IsBidirected(2, 0));
  EXPECT_FALSE(g.IsDirected(0, 2));
}

TEST(MixedGraphTest, CircleEdgeAndResolution) {
  MixedGraph g(2);
  g.AddCircleCircle(0, 1);
  EXPECT_TRUE(g.HasCircleAt(0, 1));
  EXPECT_TRUE(g.HasCircleAt(1, 0));
  EXPECT_EQ(g.NumCircleMarks(), 2u);
  g.SetEndMark(0, 1, Mark::kArrow);
  EXPECT_EQ(g.NumCircleMarks(), 1u);
  EXPECT_TRUE(g.HasArrowAt(0, 1));
}

TEST(MixedGraphTest, RemoveEdge) {
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.RemoveEdge(0, 1);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(MixedGraphTest, ParentsChildrenSpouses) {
  MixedGraph g(5);
  g.AddDirected(0, 2);
  g.AddDirected(1, 2);
  g.AddDirected(2, 3);
  g.AddBidirected(2, 4);
  EXPECT_EQ(g.Parents(2), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(g.Children(2), (std::vector<size_t>{3}));
  EXPECT_EQ(g.Spouses(2), (std::vector<size_t>{4}));
  EXPECT_EQ(g.Adjacent(2).size(), 4u);
}

TEST(MixedGraphTest, ColliderDetection) {
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.AddDirected(2, 1);
  EXPECT_TRUE(g.IsCollider(0, 1, 2));
  MixedGraph chain(3);
  chain.AddDirected(0, 1);
  chain.AddDirected(1, 2);
  EXPECT_FALSE(chain.IsCollider(0, 1, 2));
}

TEST(MixedGraphTest, IsDagDetectsCycle) {
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.AddDirected(1, 2);
  EXPECT_TRUE(g.IsDag());
  g.AddDirected(2, 0);
  EXPECT_FALSE(g.IsDag());
  EXPECT_TRUE(g.HasDirectedCycle());
}

TEST(MixedGraphTest, IsAdmgAcceptsBidirected) {
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.AddBidirected(1, 2);
  EXPECT_TRUE(g.IsAdmg());
  EXPECT_FALSE(g.IsDag());  // bidirected edge is not allowed in a DAG
}

TEST(MixedGraphTest, IsAdmgRejectsCircle) {
  MixedGraph g(2);
  g.AddCircleCircle(0, 1);
  EXPECT_FALSE(g.IsAdmg());
}

TEST(MixedGraphTest, AverageDegree) {
  MixedGraph g(4);
  g.AddDirected(0, 1);
  g.AddDirected(2, 3);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(MixedGraphTest, ToStringContainsEdges) {
  MixedGraph g(2);
  g.AddDirected(0, 1);
  const std::string s = g.ToString({"a", "b"});
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("b"), std::string::npos);
}

TEST(MixedGraphTest, MarkChars) {
  EXPECT_EQ(MarkChar(Mark::kArrow), '>');
  EXPECT_EQ(MarkChar(Mark::kTail), '-');
  EXPECT_EQ(MarkChar(Mark::kCircle), 'o');
}

}  // namespace
}  // namespace unicorn
