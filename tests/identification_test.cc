#include "causal/identification.h"

#include <gtest/gtest.h>

namespace unicorn {
namespace {

TEST(IdentificationTest, PlainDagAlwaysIdentifiable) {
  // x -> m -> y: no latent confounding anywhere.
  MixedGraph g(3);
  g.AddDirected(0, 1);
  g.AddDirected(1, 2);
  const auto result = CheckIdentifiability(g, 0, 2);
  EXPECT_TRUE(result.identifiable);
}

TEST(IdentificationTest, FrontDoorLikeChainIdentifiable) {
  // 0 -> 1 -> 2 with 0 <-> 2: the bidirected edge reaches a descendant that
  // is not a child; the district of 0 within De(0) = {0, 2} does not contain
  // the child 1 -> identifiable (front-door-flavoured).
  MixedGraph chain(3);
  chain.AddDirected(0, 1);
  chain.AddDirected(1, 2);
  chain.AddBidirected(0, 2);
  EXPECT_TRUE(CheckIdentifiability(chain, 0, 2).identifiable);
}

TEST(IdentificationTest, ConfoundedChildNotIdentifiable) {
  // 0 -> 1 (child), 0 -> 2 -> 3 (3 a descendant), 0 <-> 3 and 3 <-> 1:
  // the district of 0 within De(0) = {0, 1, 2, 3} contains the child 1 via
  // 0 <-> 3 <-> 1 -> NOT identifiable (Tian-Pearl).
  MixedGraph h(4);
  h.AddDirected(0, 1);
  h.AddDirected(0, 2);
  h.AddDirected(2, 3);
  h.AddBidirected(0, 3);
  h.AddBidirected(3, 1);
  const auto result = CheckIdentifiability(h, 0, 1);
  EXPECT_FALSE(result.identifiable);
  EXPECT_EQ(result.confounded_child, 1u);
  EXPECT_FALSE(result.reason.empty());
}

TEST(IdentificationTest, SiblingOutsideDescendantsHarmless) {
  // 0 <-> 1 where 1 is NOT a descendant of 0, plus 0 -> 2: the district of 0
  // restricted to De(0) = {0, 2} is just {0} -> identifiable.
  MixedGraph g(3);
  g.AddBidirected(0, 1);
  g.AddDirected(0, 2);
  EXPECT_TRUE(CheckIdentifiability(g, 0, 2).identifiable);
}

TEST(IdentificationTest, NonDescendantTriviallyIdentifiable) {
  MixedGraph g(3);
  g.AddDirected(1, 0);  // y -> x: x cannot affect y
  const auto result = CheckIdentifiability(g, 0, 1);
  EXPECT_TRUE(result.identifiable);
  EXPECT_NE(result.reason.find("not a descendant"), std::string::npos);
}

TEST(IdentificationTest, DistrictComputation) {
  MixedGraph g(5);
  g.AddBidirected(0, 1);
  g.AddBidirected(1, 2);
  g.AddBidirected(3, 4);
  std::vector<bool> all(5, true);
  EXPECT_EQ(DistrictOf(g, 0, all), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(DistrictOf(g, 3, all), (std::vector<size_t>{3, 4}));
  // Restriction breaks the chain.
  std::vector<bool> restricted = {true, false, true, true, true};
  EXPECT_EQ(DistrictOf(g, 0, restricted), (std::vector<size_t>{0}));
}

TEST(IdentificationTest, BidirectedToNonDescendantHarmless) {
  // x <-> z where z is upstream: confounding on the backdoor, handled by
  // adjustment; still identifiable per the criterion.
  MixedGraph g(3);
  g.AddBidirected(0, 2);
  g.AddDirected(0, 1);
  const auto result = CheckIdentifiability(g, 0, 1);
  EXPECT_TRUE(result.identifiable);
}

}  // namespace
}  // namespace unicorn
