#include "stats/independence.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace unicorn {
namespace {

// Builds a table of continuous variables from column generators.
DataTable ContinuousTable(const std::vector<std::vector<double>>& cols,
                          VarRole role = VarRole::kEvent) {
  std::vector<Variable> vars(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    vars[i] = {"v" + std::to_string(i), VarType::kContinuous, role, {}};
  }
  DataTable t(vars);
  for (size_t r = 0; r < cols[0].size(); ++r) {
    std::vector<double> row(cols.size());
    for (size_t c = 0; c < cols.size(); ++c) {
      row[c] = cols[c][r];
    }
    t.AddRow(row);
  }
  return t;
}

class FisherZFixture : public ::testing::Test {
 protected:
  static constexpr int kN = 800;
};

TEST_F(FisherZFixture, DetectsMarginalDependence) {
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < kN; ++i) {
    const double xi = rng.Gaussian();
    x.push_back(xi);
    y.push_back(2.0 * xi + rng.Gaussian(0, 0.5));
  }
  const DataTable t = ContinuousTable({x, y});
  FisherZTest test(t);
  EXPECT_LT(test.PValue(0, 1, {}), 0.001);
}

TEST_F(FisherZFixture, AcceptsIndependence) {
  Rng rng(2);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < kN; ++i) {
    x.push_back(rng.Gaussian());
    y.push_back(rng.Gaussian());
  }
  const DataTable t = ContinuousTable({x, y});
  FisherZTest test(t);
  EXPECT_GT(test.PValue(0, 1, {}), 0.01);
}

TEST_F(FisherZFixture, ChainBlockedByConditioning) {
  // X -> Z -> Y: X ⊥ Y | Z but not marginally.
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> z;
  std::vector<double> y;
  for (int i = 0; i < kN; ++i) {
    const double xi = rng.Gaussian();
    const double zi = 1.5 * xi + rng.Gaussian(0, 0.4);
    const double yi = -2.0 * zi + rng.Gaussian(0, 0.4);
    x.push_back(xi);
    z.push_back(zi);
    y.push_back(yi);
  }
  const DataTable t = ContinuousTable({x, z, y});
  FisherZTest test(t);
  EXPECT_LT(test.PValue(0, 2, {}), 0.001);
  EXPECT_GT(test.PValue(0, 2, {1}), 0.01);
}

TEST_F(FisherZFixture, ColliderOpenedByConditioning) {
  // X -> Z <- Y: X ⊥ Y marginally, dependent given Z.
  Rng rng(4);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> z;
  for (int i = 0; i < kN; ++i) {
    const double xi = rng.Gaussian();
    const double yi = rng.Gaussian();
    x.push_back(xi);
    y.push_back(yi);
    z.push_back(xi + yi + rng.Gaussian(0, 0.3));
  }
  const DataTable t = ContinuousTable({x, y, z});
  FisherZTest test(t);
  EXPECT_GT(test.PValue(0, 1, {}), 0.01);
  EXPECT_LT(test.PValue(0, 1, {2}), 0.001);
}

TEST_F(FisherZFixture, PartialCorrelationMatchesAnalytic) {
  // For standardized X, Z = aX + e1, Y = bZ + e2, partial corr of (X, Y)
  // given Z is 0; marginal corr is a*b / norm.
  Rng rng(5);
  std::vector<double> x;
  std::vector<double> z;
  std::vector<double> y;
  for (int i = 0; i < 4000; ++i) {
    const double xi = rng.Gaussian();
    const double zi = 0.8 * xi + rng.Gaussian(0, std::sqrt(1 - 0.64));
    const double yi = 0.7 * zi + rng.Gaussian(0, std::sqrt(1 - 0.49));
    x.push_back(xi);
    z.push_back(zi);
    y.push_back(yi);
  }
  const DataTable t = ContinuousTable({x, z, y});
  FisherZTest test(t);
  EXPECT_NEAR(test.PartialCorrelation(0, 2, {}), 0.56, 0.05);
  EXPECT_NEAR(test.PartialCorrelation(0, 2, {1}), 0.0, 0.05);
}

TEST_F(FisherZFixture, InsufficientSamplesReturnsOne) {
  const DataTable t = ContinuousTable({{1.0, 2.0}, {2.0, 1.0}});
  FisherZTest test(t);
  EXPECT_EQ(test.PValue(0, 1, {}), 1.0);
}

DataTable DiscreteTable(const std::vector<std::vector<double>>& cols) {
  std::vector<Variable> vars(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    vars[i] = {"d" + std::to_string(i), VarType::kDiscrete, VarRole::kOption, {0, 1, 2}};
  }
  DataTable t(vars);
  for (size_t r = 0; r < cols[0].size(); ++r) {
    std::vector<double> row(cols.size());
    for (size_t c = 0; c < cols.size(); ++c) {
      row[c] = cols[c][r];
    }
    t.AddRow(row);
  }
  return t;
}

TEST(GSquareTest, DetectsDiscreteDependence) {
  Rng rng(6);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) {
    const int xi = static_cast<int>(rng.UniformInt(uint64_t{3}));
    x.push_back(xi);
    y.push_back(rng.Bernoulli(0.85) ? xi : static_cast<int>(rng.UniformInt(uint64_t{3})));
  }
  const DataTable t = DiscreteTable({x, y});
  GSquareTest test(t);
  EXPECT_LT(test.PValue(0, 1, {}), 0.001);
}

TEST(GSquareTest, AcceptsDiscreteIndependence) {
  Rng rng(7);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) {
    x.push_back(static_cast<double>(rng.UniformInt(uint64_t{3})));
    y.push_back(static_cast<double>(rng.UniformInt(uint64_t{3})));
  }
  const DataTable t = DiscreteTable({x, y});
  GSquareTest test(t);
  EXPECT_GT(test.PValue(0, 1, {}), 0.01);
}

TEST(GSquareTest, ConditionalIndependenceChain) {
  Rng rng(8);
  std::vector<double> x;
  std::vector<double> z;
  std::vector<double> y;
  for (int i = 0; i < 1500; ++i) {
    const int xi = static_cast<int>(rng.UniformInt(uint64_t{3}));
    const int zi = rng.Bernoulli(0.9) ? xi : static_cast<int>(rng.UniformInt(uint64_t{3}));
    const int yi = rng.Bernoulli(0.9) ? zi : static_cast<int>(rng.UniformInt(uint64_t{3}));
    x.push_back(xi);
    z.push_back(zi);
    y.push_back(yi);
  }
  const DataTable t = DiscreteTable({x, z, y});
  GSquareTest test(t);
  EXPECT_LT(test.PValue(0, 2, {}), 0.001);
  EXPECT_GT(test.PValue(0, 2, {1}), 0.01);
}

TEST(CompositeTest, DispatchesOnTypes) {
  // Mixed table: discrete option + continuous event. Should not crash and
  // should find the dependence either way.
  Rng rng(9);
  std::vector<Variable> vars = {
      {"opt", VarType::kDiscrete, VarRole::kOption, {0, 1, 2}},
      {"event", VarType::kContinuous, VarRole::kEvent, {}},
  };
  DataTable t(vars);
  for (int i = 0; i < 500; ++i) {
    const double o = static_cast<double>(rng.UniformInt(uint64_t{3}));
    t.AddRow({o, 3.0 * o + rng.Gaussian(0, 0.3)});
  }
  CompositeTest test(t);
  EXPECT_LT(test.PValue(0, 1, {}), 0.001);
}

TEST(CompositeTest, TracksCallCount) {
  Rng rng(10);
  std::vector<Variable> vars = {
      {"a", VarType::kContinuous, VarRole::kEvent, {}},
      {"b", VarType::kContinuous, VarRole::kEvent, {}},
  };
  DataTable t(vars);
  for (int i = 0; i < 50; ++i) {
    t.AddRow({rng.Gaussian(), rng.Gaussian()});
  }
  CompositeTest test(t);
  test.PValue(0, 1, {});
  test.PValue(0, 1, {});
  EXPECT_GE(test.calls, 2);
}

}  // namespace
}  // namespace unicorn
