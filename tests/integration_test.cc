// Cross-module integration and property tests: the full pipeline
// (simulate -> learn -> estimate -> repair) exercised over all six systems.
#include <cmath>

#include <gtest/gtest.h>

#include "causal/identification.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "graph/algorithms.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/debugger.h"
#include "unicorn/model_learner.h"

namespace unicorn {
namespace {

class SystemSweep : public ::testing::TestWithParam<SystemId> {};

TEST_P(SystemSweep, LearnedModelIsValidAdmgWithConstraints) {
  SystemSpec spec;
  spec.num_events = 8;
  auto model = std::make_shared<SystemModel>(BuildSystem(GetParam(), spec));
  Rng rng(500 + static_cast<uint64_t>(GetParam()));
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 200; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  CausalModelOptions options;
  options.fci.skeleton.max_cond_size = 2;
  options.fci.skeleton.max_subsets = 16;
  options.fci.max_pds_cond_size = 1;
  options.entropic.latent.restarts = 1;
  const LearnedModel learned = LearnCausalPerformanceModel(data, options);
  EXPECT_TRUE(learned.admg.IsAdmg());
  for (size_t opt : model->OptionIndices()) {
    EXPECT_TRUE(learned.admg.Parents(opt).empty());
    EXPECT_TRUE(learned.admg.Spouses(opt).empty());
  }
  for (size_t obj : model->ObjectiveIndices()) {
    EXPECT_TRUE(learned.admg.Children(obj).empty());
  }
}

TEST_P(SystemSweep, LearnedGraphSparserThanComplete) {
  SystemSpec spec;
  spec.num_events = 8;
  auto model = std::make_shared<SystemModel>(BuildSystem(GetParam(), spec));
  Rng rng(510 + static_cast<uint64_t>(GetParam()));
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 150; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  CausalModelOptions options;
  options.fci.skeleton.max_cond_size = 1;
  options.entropic.latent.restarts = 1;
  const LearnedModel learned = LearnCausalPerformanceModel(data, options);
  // Paper Table 3: degrees in the low single digits.
  EXPECT_LT(learned.admg.AverageDegree(), 8.0);
}

TEST_P(SystemSweep, InterventionalQueriesFiniteForAllOptions) {
  SystemSpec spec;
  spec.num_events = 6;
  auto model = std::make_shared<SystemModel>(BuildSystem(GetParam(), spec));
  Rng rng(520 + static_cast<uint64_t>(GetParam()));
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 120; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  const MixedGraph truth = model->GroundTruthGraph();
  const CausalEffectEstimator estimator(truth, data);
  const size_t latency = model->ObjectiveIndices()[0];
  for (size_t opt : model->OptionIndices()) {
    const double ace = estimator.Ace(latency, opt);
    EXPECT_TRUE(std::isfinite(ace));
    EXPECT_GE(ace, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemSweep,
                         ::testing::Values(SystemId::kDeepstream, SystemId::kXception,
                                           SystemId::kBert, SystemId::kDeepspeech,
                                           SystemId::kX264, SystemId::kSqlite),
                         [](const ::testing::TestParamInfo<SystemId>& info) {
                           return SystemName(info.param);
                         });

TEST(IntegrationTest, GroundTruthQueriesIdentifiable) {
  // The ground-truth graphs contain no bidirected edges, so every
  // option -> objective query must be identifiable.
  SystemSpec spec;
  spec.num_events = 8;
  const SystemModel model = BuildSystem(SystemId::kX264, spec);
  const MixedGraph truth = model.GroundTruthGraph();
  const size_t latency = model.ObjectiveIndices()[0];
  for (size_t opt : model.OptionIndices()) {
    EXPECT_TRUE(CheckIdentifiability(truth, opt, latency).identifiable);
  }
}

TEST(IntegrationTest, HarnessTaskRoundTrip) {
  SystemSpec spec;
  spec.num_events = 6;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kBert, spec));
  const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 530);
  Rng rng(531);
  const auto config = task.sample_config(&rng);
  const auto row = task.measure(config);
  ASSERT_EQ(row.size(), model->NumVars());
  EXPECT_EQ(task.ConfigOf(row), config);
  EXPECT_EQ(task.EmptyTable().NumVars(), model->NumVars());
}

TEST(IntegrationTest, TrueAceWeightsPositiveForInfluentialOptions) {
  SystemSpec spec;
  spec.num_events = 8;
  const SystemModel model = BuildSystem(SystemId::kXception, spec);
  const size_t latency = model.ObjectiveIndices()[0];
  const auto weights = TrueAceWeights(model, latency, Tx2(), DefaultWorkload(), 532, 8);
  double total = 0.0;
  for (size_t opt : model.OptionIndices()) {
    EXPECT_GE(weights[opt], 0.0);
    total += weights[opt];
  }
  EXPECT_GT(total, 0.0);
  // Non-options carry no weight.
  for (size_t e : model.EventIndices()) {
    EXPECT_EQ(weights[e], 0.0);
  }
}

TEST(IntegrationTest, GoalsForFaultMatchPercentile) {
  SystemSpec spec;
  spec.num_events = 6;
  const SystemModel model = BuildSystem(SystemId::kX264, spec);
  Rng rng(533);
  const FaultCuration curation =
      CurateFaults(model, Tx2(), DefaultWorkload(), 800, &rng, 0.97);
  ASSERT_FALSE(curation.faults.empty());
  const auto goals = GoalsForFault(curation, curation.faults.front(), 0.5);
  for (const auto& goal : goals) {
    // The median goal must sit below the fault threshold.
    for (size_t o = 0; o < curation.objective_vars.size(); ++o) {
      if (curation.objective_vars[o] == goal.var) {
        EXPECT_LT(goal.threshold, curation.thresholds[o]);
      }
    }
  }
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  // The same seeds produce byte-identical debugging results.
  SystemSpec spec;
  spec.num_events = 6;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kX264, spec));
  Rng rng(534);
  const FaultCuration curation =
      CurateFaults(*model, Tx2(), DefaultWorkload(), 800, &rng, 0.97);
  ASSERT_FALSE(curation.faults.empty());
  const Fault& fault = curation.faults.front();
  const auto goals = GoalsForFault(curation, fault);
  DebugOptions options;
  options.initial_samples = 15;
  options.max_iterations = 6;
  options.model.fci.skeleton.max_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  auto run = [&] {
    const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 535);
    UnicornDebugger debugger(task, options);
    return debugger.Debug(fault.config, goals);
  };
  const DebugResult a = run();
  const DebugResult b = run();
  EXPECT_EQ(a.fixed_config, b.fixed_config);
  EXPECT_EQ(a.predicted_root_causes, b.predicted_root_causes);
  EXPECT_EQ(a.measurements_used, b.measurements_used);
}

}  // namespace
}  // namespace unicorn
