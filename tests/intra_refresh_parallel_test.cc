// Intra-refresh parallelism contract: the parallel Possible-D-SEP and
// entropic phases, the buffered/lock-free CI cache tiers, and the
// speculation accounting must all be invisible in the results — any engine
// thread count reproduces the serial reference bit-for-bit, including the
// test-call and cache-hit ledgers.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "causal/entropic.h"
#include "causal/fci.h"
#include "stats/ci_cache.h"
#include "sysmodel/systems.h"
#include "unicorn/model_learner.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace unicorn {
namespace {

struct World {
  DataTable data;
  std::vector<Variable> vars;
};

World MeasuredWorld(SystemId id, size_t rows, uint64_t seed) {
  SystemSpec spec;
  spec.num_events = 8;
  const auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < rows; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  World world;
  world.data = model->MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  world.vars = world.data.Variables();
  return world;
}

// Shallow skeleton + deeper Possible-D-SEP, so the PDS phase has real work.
FciOptions PdsHeavyOptions() {
  FciOptions options;
  options.skeleton.max_cond_size = 1;
  options.skeleton.max_subsets = 8;
  options.use_possible_dsep = true;
  options.max_pds_cond_size = 2;
  return options;
}

::testing::AssertionResult SameMarks(const MixedGraph& a, const MixedGraph& b) {
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    for (size_t j = 0; j < a.NumNodes(); ++j) {
      if (a.EndMark(i, j) != b.EndMark(i, j)) {
        return ::testing::AssertionFailure() << "marks differ at (" << i << ", " << j << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SameSepsets(const SepsetMap& a, const SepsetMap& b, size_t n) {
  for (size_t x = 0; x < n; ++x) {
    for (size_t y = x + 1; y < n; ++y) {
      const auto* sa = a.Get(x, y);
      const auto* sb = b.Get(x, y);
      if ((sa == nullptr) != (sb == nullptr)) {
        return ::testing::AssertionFailure()
               << "sepset presence differs at (" << x << ", " << y << ")";
      }
      if (sa != nullptr && *sa != *sb) {
        return ::testing::AssertionFailure()
               << "sepset contents differ at (" << x << ", " << y << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(IntraRefreshParallelTest, PdsPhaseBitIdenticalAcrossThreadCounts) {
  const World world = MeasuredWorld(SystemId::kDeepspeech, 220, 31);
  const StructuralConstraints constraints(world.vars);
  const FciOptions options = PdsHeavyOptions();
  const size_t n = world.data.NumVars();

  const CompositeTest serial_test(world.data);
  const FciResult serial = RunFci(serial_test, constraints, n, options);
  ASSERT_GT(serial.tests_performed, 0);

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    const CompositeTest test(world.data);
    const FciResult parallel = RunFci(test, constraints, n, options, {}, &pool);
    EXPECT_TRUE(SameMarks(serial.pag, parallel.pag)) << "threads=" << threads;
    EXPECT_EQ(serial.tests_performed, parallel.tests_performed) << "threads=" << threads;
    EXPECT_TRUE(SameSepsets(serial.sepsets, parallel.sepsets, n)) << "threads=" << threads;
  }
}

TEST(IntraRefreshParallelTest, PdsPhaseBitIdenticalWithCache) {
  const World world = MeasuredWorld(SystemId::kXception, 200, 32);
  const StructuralConstraints constraints(world.vars);
  const FciOptions options = PdsHeavyOptions();
  const size_t n = world.data.NumVars();

  // Serial cached reference: requested/evaluated/hit ledgers included.
  const CompositeTest serial_inner(world.data);
  CICache serial_cache;
  const CachedCITest serial_cached(serial_inner, &serial_cache, world.data.NumRows());
  const FciResult serial = RunFci(serial_cached, constraints, n, options);
  ASSERT_GT(serial_cached.calls.load(), 0);
  ASSERT_GT(serial_cache.hits(), 0);  // the PDS phase must re-hit skeleton keys

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    const CompositeTest inner(world.data);
    CICache cache;
    const CachedCITest cached(inner, &cache, world.data.NumRows());
    const FciResult parallel = RunFci(cached, constraints, n, options, {}, &pool);
    EXPECT_TRUE(SameMarks(serial.pag, parallel.pag)) << "threads=" << threads;
    EXPECT_TRUE(SameSepsets(serial.sepsets, parallel.sepsets, n)) << "threads=" << threads;
    EXPECT_EQ(serial.tests_performed, parallel.tests_performed) << "threads=" << threads;
    // The whole accounting chain must match the serial run exactly:
    // requested (decorator), evaluated (inner), hits (decorator + cache).
    EXPECT_EQ(serial_cached.calls.load(), cached.calls.load()) << "threads=" << threads;
    EXPECT_EQ(serial_inner.calls.load(), inner.calls.load()) << "threads=" << threads;
    EXPECT_EQ(serial_cached.hits(), cached.hits()) << "threads=" << threads;
    EXPECT_EQ(serial_cache.hits(), cache.hits()) << "threads=" << threads;
    EXPECT_EQ(serial_cache.lookups(), cache.lookups()) << "threads=" << threads;
    EXPECT_EQ(cache.cross_shard_hits(), 0) << "threads=" << threads;
  }
}

::testing::AssertionResult SameDecisions(const EdgeDecisionMap& a, const EdgeDecisionMap& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "decision counts differ: " << a.size() << " vs "
                                         << b.size();
  }
  for (const auto& [pair, da] : a) {
    const auto it = b.find(pair);
    if (it == b.end()) {
      return ::testing::AssertionFailure()
             << "pair (" << pair.first << ", " << pair.second << ") missing";
    }
    const EdgeDecision& db = it->second;
    if (da.kind != db.kind || da.entropy_forward != db.entropy_forward ||
        da.entropy_backward != db.entropy_backward || da.latent_entropy != db.latent_entropy ||
        da.latent_found != db.latent_found) {
      return ::testing::AssertionFailure()
             << "decision differs at (" << pair.first << ", " << pair.second << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(IntraRefreshParallelTest, EntropicPhaseBitIdenticalAcrossThreadCounts) {
  const World world = MeasuredWorld(SystemId::kX264, 220, 33);
  const StructuralConstraints constraints(world.vars);
  const size_t n = world.data.NumVars();

  // A hand-built PAG with plenty of unresolved circle edges, so the
  // entropic resolver has real scoring work at every pair.
  MixedGraph unresolved(n);
  const size_t span = std::min<size_t>(n, 12);
  for (size_t a = 0; a < span; ++a) {
    for (size_t b = a + 1; b < std::min(span, a + 3); ++b) {
      unresolved.AddCircleCircle(a, b);
    }
  }

  EntropicOptions options;
  options.latent.restarts = 2;
  options.latent.iterations = 30;

  Rng serial_rng(97);
  MixedGraph serial_pag = unresolved;
  EdgeDecisionMap serial_decisions;
  ResolveWithEntropy(world.data, constraints, options, &serial_rng, &serial_pag, nullptr,
                     &serial_decisions);
  ASSERT_FALSE(serial_decisions.empty());
  const uint64_t serial_next = serial_rng.NextU64();

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    Rng rng(97);
    MixedGraph pag = unresolved;
    EdgeDecisionMap decisions;
    ResolveWithEntropy(world.data, constraints, options, &rng, &pag, nullptr, &decisions,
                       &pool);
    EXPECT_TRUE(SameMarks(serial_pag, pag)) << "threads=" << threads;
    EXPECT_TRUE(SameDecisions(serial_decisions, decisions)) << "threads=" << threads;
    // The parent stream must advance identically too (one Fork per fresh
    // pair), so everything downstream of the resolver stays deterministic.
    EXPECT_EQ(serial_next, rng.NextU64()) << "threads=" << threads;
  }
}

TEST(IntraRefreshParallelTest, EngineRefreshBitIdenticalAcrossThreadCounts) {
  const World world = MeasuredWorld(SystemId::kSqlite, 260, 34);
  CausalModelOptions model_options;
  model_options.fci = PdsHeavyOptions();
  model_options.entropic.latent.restarts = 1;
  model_options.entropic.latent.iterations = 20;

  struct Snapshot {
    MixedGraph admg;
    long long requested = 0;
    long long evaluated = 0;
    long long hits = 0;
  };
  std::vector<Snapshot> snapshots;
  for (int threads : {1, 2, 8}) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.use_ci_cache = true;
    CausalModelEngine engine(world.vars, model_options, engine_options);
    for (size_t r = 0; r < world.data.NumRows(); ++r) {
      engine.AddRow(world.data.Row(r));
    }
    engine.Refresh(411);
    // Second, warm refresh after appended rows: exercises Update(pool),
    // warm-start dirty tracking, and the cache across a publish barrier.
    for (size_t r = 0; r < 40; ++r) {
      engine.AddRow(world.data.Row(r % world.data.NumRows()));
    }
    engine.Refresh(412);
    const EngineStats& stats = engine.stats();
    snapshots.push_back({engine.model().admg, stats.total_tests_requested,
                         stats.total_tests_evaluated, stats.total_cache_hits});
  }
  for (size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_TRUE(SameMarks(snapshots[0].admg, snapshots[i].admg)) << "matrix row " << i;
    EXPECT_EQ(snapshots[0].requested, snapshots[i].requested) << "matrix row " << i;
    EXPECT_EQ(snapshots[0].evaluated, snapshots[i].evaluated) << "matrix row " << i;
    EXPECT_EQ(snapshots[0].hits, snapshots[i].hits) << "matrix row " << i;
  }
}

TEST(IntraRefreshParallelTest, SpeculationAccountingIsInvisible) {
  const World world = MeasuredWorld(SystemId::kXception, 150, 35);
  const std::vector<std::vector<int>> sets = {{0}, {1}, {0, 1}, {2}, {1, 2}};
  BatchedCIRequest req;
  req.x = 0;
  req.y = 3;
  req.sets = &sets;
  req.alpha = 0.05;

  // Plain test: discard restores `calls` exactly; adopt matches the direct
  // batched sweep.
  {
    const CompositeTest test(world.data);
    CISpeculation spec;
    test.SpeculateFirstIndependent(req, nullptr, &spec);
    test.DiscardSpeculation(spec);
    EXPECT_EQ(test.calls.load(), 0);

    test.SpeculateFirstIndependent(req, nullptr, &spec);
    test.AdoptSpeculation(spec, req);
    const CompositeTest direct(world.data);
    const int direct_idx = direct.FirstIndependent(req);
    EXPECT_EQ(spec.first_independent, direct_idx);
    EXPECT_EQ(test.calls.load(), direct.calls.load());
  }

  // Cached test: speculation probes quietly, so a discarded sweep leaves the
  // decorator and the cache ledgers untouched; an adopted sweep replays them
  // to exactly what a direct sweep would have recorded.
  {
    const CompositeTest inner(world.data);
    CICache cache;
    const CachedCITest cached(inner, &cache, world.data.NumRows());
    // Warm the cache so the speculation has hits to account for.
    const int warm_idx = cached.FirstIndependent(req);
    cached.PublishPending();
    const long long calls_before = cached.calls.load();
    const long long inner_before = inner.calls.load();
    const long long dec_hits_before = cached.hits();
    const long long hits_before = cache.hits();
    const long long lookups_before = cache.lookups();

    CISpeculation spec;
    cached.SpeculateFirstIndependent(req, nullptr, &spec);
    EXPECT_EQ(spec.first_independent, warm_idx);
    cached.DiscardSpeculation(spec);
    EXPECT_EQ(cached.calls.load(), calls_before);
    EXPECT_EQ(inner.calls.load(), inner_before);
    EXPECT_EQ(cache.hits(), hits_before);
    EXPECT_EQ(cache.lookups(), lookups_before);

    cached.SpeculateFirstIndependent(req, nullptr, &spec);
    cached.AdoptSpeculation(spec, req);
    // A direct re-sweep on a second decorator over the same warm cache.
    const CompositeTest inner2(world.data);
    const CachedCITest direct(inner2, &cache, world.data.NumRows());
    const int direct_idx = direct.FirstIndependent(req);
    EXPECT_EQ(spec.first_independent, direct_idx);
    EXPECT_EQ(cached.calls.load() - calls_before, direct.calls.load());
    EXPECT_EQ(inner.calls.load() - inner_before, inner2.calls.load());
    EXPECT_EQ(cached.hits() - dec_hits_before, direct.hits());
  }
}

TEST(IntraRefreshParallelTest, WriteBufferVisibilityAndPublish) {
  CICache cache;
  CICache::WriteBuffer pending;
  const CICache::Key key = CICache::MakeKey(1, 2, {3, 4}, 500, 99);
  cache.StoreBuffered(key, 0.25, &pending);

  // Visible to lookups that carry the buffer, invisible to everyone else.
  const auto own = cache.LookupFrom(key, 0, &pending);
  ASSERT_TRUE(own.has_value());
  EXPECT_EQ(own->p_value, 0.25);
  EXPECT_FALSE(own->cross_shard);
  EXPECT_FALSE(cache.LookupFrom(key, 0).has_value());

  // Publish is the phase barrier: afterwards the entry is shared state,
  // attributed to the publishing shard.
  cache.Publish(&pending, 7);
  const auto shared = cache.LookupFrom(key, 0);
  ASSERT_TRUE(shared.has_value());
  EXPECT_EQ(shared->p_value, 0.25);
  EXPECT_TRUE(shared->cross_shard);
  EXPECT_FALSE(cache.LookupFrom(key, 7)->cross_shard);
  EXPECT_EQ(cache.size(), 1u);
}

// TSan target: eight threads hammer the lock-free read path while buffering
// private stores and publishing them at their own barriers, with a ninth
// writer mutating the shared stripes throughout.
TEST(IntraRefreshParallelTest, ConcurrentFastPathReadHammer) {
  CICache cache;
  constexpr int kSharedKeys = 64;
  std::vector<CICache::Key> keys;
  for (int i = 0; i < kSharedKeys; ++i) {
    keys.push_back(CICache::MakeKey(i % 11, 16 + i % 13, {i % 7, 8 + i % 5}, 500, 7));
    cache.Store(keys.back(), 1e-3 * i, /*shard=*/0);
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 250;
  std::array<CICache::WriteBuffer, kThreads> buffers;
  std::array<long long, kThreads> found{};
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      long long local_found = 0;
      for (int iter = 0; iter < kIters; ++iter) {
        for (int k = 0; k < kSharedKeys; ++k) {
          const auto hit = cache.LookupFrom(keys[k], /*shard=*/1, &buffers[t]);
          if (hit.has_value()) {
            ++local_found;
            if (hit->p_value != 1e-3 * k) {
              ok.store(false);  // torn or misattributed value
            }
          }
        }
        const auto mine =
            CICache::MakeKey(100 + t, 200 + iter % 16, {3, 5}, 500, 7);
        cache.StoreBuffered(mine, 0.5, &buffers[t]);
        if (!cache.LookupFrom(mine, 1, &buffers[t]).has_value()) {
          ok.store(false);  // own pending store must always be visible
        }
      }
      // Each thread publishes its own quiescent buffer while the others are
      // still reading — the contract Publish documents.
      cache.Publish(&buffers[t], static_cast<uint32_t>(t));
      found[t] = local_found;
    });
  }
  // Shared-stripe writer racing the read fast path.
  std::thread writer([&] {
    for (int iter = 0; iter < kIters; ++iter) {
      for (int k = 0; k < kSharedKeys; k += 3) {
        cache.Store(keys[k], 1e-3 * k, /*shard=*/2);
      }
    }
  });
  for (auto& th : threads) {
    th.join();
  }
  writer.join();

  EXPECT_TRUE(ok.load());
  for (int t = 0; t < kThreads; ++t) {
    // Pre-populated shared keys never disappear: every lookup must hit.
    EXPECT_EQ(found[t], static_cast<long long>(kSharedKeys) * kIters) << "thread " << t;
  }
  // Every published private key is now globally visible.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < 16; ++i) {
      const auto key = CICache::MakeKey(100 + t, 200 + i, {3, 5}, 500, 7);
      EXPECT_TRUE(cache.LookupFrom(key, 0).has_value()) << "thread " << t << " key " << i;
    }
  }
}

}  // namespace
}  // namespace unicorn
