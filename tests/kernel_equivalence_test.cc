// Equivalence pinning of the batched/SIMD CI kernels against the legacy
// scalar arithmetic (simd::SetReferenceKernels(true)).
//
// Contract under test (stats/simd.h, stats/independence.h):
//   - GSquareTest p-values are BIT-IDENTICAL between the fused single-pass
//     contingency kernel and the unfused reference path, for every table
//     shape, conditioning size, and degenerate column.
//   - FisherZTest correlations differ only in the blocked reduction order:
//     at most a few ulps on the correlation, documented here as <= 4.
//   - Incremental GSquareTest::Update (absorbing appended rows) produces
//     exactly what a cold test built on the grown table computes, including
//     the new-level full-recode fallback and stratum extension.
//   - FirstIndependent is serially equivalent to a per-set PValue loop:
//     same index, same p-value, same `calls` accounting, same early exit.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "stats/independence.h"
#include "stats/simd.h"
#include "stats/table.h"
#include "util/rng.h"

namespace unicorn {
namespace {

// Restores the process-wide kernel switch no matter how the test exits.
class ReferenceModeGuard {
 public:
  ReferenceModeGuard() : prev_(simd::UseReferenceKernels()) {}
  ~ReferenceModeGuard() { simd::SetReferenceKernels(prev_); }

 private:
  bool prev_;
};

// Ulp distance between two finite doubles (0 when bit-identical).
int64_t UlpDistance(double a, double b) {
  int64_t ia;
  int64_t ib;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  // Map the sign-magnitude bit pattern to a monotonic integer line.
  if (ia < 0) ia = INT64_MIN - ia;
  if (ib < 0) ib = INT64_MIN - ib;
  const int64_t d = ia - ib;
  return d < 0 ? -d : d;
}

// A mixed table exercising every column kind the kernels special-case:
//   0 continuous, dense ranks          3 discrete two-level
//   1 continuous, correlated with 0    4 discrete constant (one level)
//   2 continuous, CONSTANT (all ranks  5 discrete three-level, correlated
//     tied — degenerate Fisher column)    with 3
//   6 continuous heavy-tie column (two distinct values — mid-ranks tie)
DataTable MixedTable(size_t rows, uint64_t seed) {
  std::vector<Variable> vars = {
      {"c0", VarType::kContinuous, VarRole::kEvent, {}},
      {"c1", VarType::kContinuous, VarRole::kEvent, {}},
      {"c_const", VarType::kContinuous, VarRole::kEvent, {}},
      {"d_two", VarType::kDiscrete, VarRole::kOption, {0, 1}},
      {"d_const", VarType::kDiscrete, VarRole::kOption, {0, 1}},
      {"d_three", VarType::kDiscrete, VarRole::kOption, {0, 1, 2}},
      {"c_ties", VarType::kContinuous, VarRole::kEvent, {}},
  };
  DataTable t(vars);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    const double c0 = rng.Gaussian();
    const double d3 = static_cast<double>(rng.UniformInt(uint64_t{3}));
    t.AddRow({c0,
              0.8 * c0 + rng.Gaussian(0, 0.5),
              2.5,  // constant: all ranks tied
              static_cast<double>(rng.UniformInt(uint64_t{2})),
              1.0,  // constant discrete: single level
              rng.Bernoulli(0.8) ? d3 : static_cast<double>(rng.UniformInt(uint64_t{3})),
              rng.Bernoulli(0.5) ? 0.0 : 1.0});
  }
  return t;
}

// Conditioning sets of size 0..4 over the 7-column table, avoiding x/y.
std::vector<std::vector<int>> ConditioningSets(int x, int y) {
  std::vector<int> others;
  for (int v = 0; v < 7; ++v) {
    if (v != x && v != y) {
      others.push_back(v);
    }
  }
  std::vector<std::vector<int>> sets = {{}};
  for (size_t size = 1; size <= 4; ++size) {
    std::vector<int> s(others.begin(), others.begin() + size);
    sets.push_back(s);
    // A second set of the same size starting elsewhere, when possible.
    if (size < others.size()) {
      std::vector<int> s2(others.end() - size, others.end());
      if (s2 != s) {
        sets.push_back(s2);
      }
    }
  }
  return sets;
}

constexpr size_t kRowCounts[] = {3, 64, 65, 1000};

TEST(KernelEquivalence, GSquareBitIdenticalAcrossShapes) {
  ReferenceModeGuard guard;
  for (size_t rows : kRowCounts) {
    const DataTable t = MixedTable(rows, 100 + rows);
    for (int x : {3, 4, 5}) {
      for (int y : {3, 5}) {
        if (x == y) continue;
        for (const auto& s : ConditioningSets(x, y)) {
          simd::SetReferenceKernels(false);
          GSquareTest fast(t);
          const double p_fast = fast.PValue(x, y, s);
          simd::SetReferenceKernels(true);
          GSquareTest ref(t);
          const double p_ref = ref.PValue(x, y, s);
          EXPECT_EQ(p_fast, p_ref)
              << "rows=" << rows << " x=" << x << " y=" << y << " |s|=" << s.size();
        }
      }
    }
  }
}

TEST(KernelEquivalence, FisherWithinUlpBoundAcrossShapes) {
  ReferenceModeGuard guard;
  for (size_t rows : kRowCounts) {
    const DataTable t = MixedTable(rows, 200 + rows);
    for (int x : {0, 2, 6}) {
      for (int y : {1, 6}) {
        if (x == y) continue;
        for (const auto& s : ConditioningSets(x, y)) {
          // Fisher-z conditions on continuous columns only in practice, but
          // the kernel must stay robust to any index set.
          std::vector<int> cont_s;
          for (int v : s) {
            if (v == 0 || v == 1 || v == 2 || v == 6) {
              cont_s.push_back(v);
            }
          }
          simd::SetReferenceKernels(false);
          FisherZTest fast(t);
          const double corr_fast = fast.Correlation(x, y);
          const double p_fast = fast.PValue(x, y, cont_s);
          simd::SetReferenceKernels(true);
          FisherZTest ref(t);
          const double corr_ref = ref.Correlation(x, y);
          const double p_ref = ref.PValue(x, y, cont_s);
          // The blocked reduction reorders additions: documented bound of
          // <= 4 ulps on the pairwise correlation.
          EXPECT_LE(UlpDistance(corr_fast, corr_ref), 4)
              << "rows=" << rows << " x=" << x << " y=" << y;
          // The z-transform can amplify correlation ulps near |r| = 1; a
          // tight relative bound on the p-value still pins the kernels.
          EXPECT_NEAR(p_fast, p_ref, 1e-9 * std::max(1.0, std::fabs(p_ref)))
              << "rows=" << rows << " x=" << x << " y=" << y << " |s|=" << cont_s.size();
        }
      }
    }
  }
}

TEST(KernelEquivalence, GSquareDegenerateColumns) {
  ReferenceModeGuard guard;
  // Constant discrete column as endpoint and inside the conditioning set.
  const DataTable t = MixedTable(65, 7);
  const std::vector<std::vector<int>> queries_s = {{}, {4}, {4, 3}, {2, 4}, {3, 4, 5}};
  for (const auto& s : queries_s) {
    simd::SetReferenceKernels(false);
    GSquareTest fast(t);
    const double p_fast_endpoint = fast.PValue(4, 3, {});
    const double p_fast = fast.PValue(3, 5, s);
    simd::SetReferenceKernels(true);
    GSquareTest ref(t);
    EXPECT_EQ(p_fast_endpoint, ref.PValue(4, 3, {}));
    EXPECT_EQ(p_fast, ref.PValue(3, 5, s));
  }
}

// Appends rows that stay inside the existing discrete levels: incremental
// Update must extend codes and strata, and the result must equal a cold test.
TEST(KernelEquivalence, IncrementalUpdateExtendsWithoutNewLevels) {
  ReferenceModeGuard guard;
  simd::SetReferenceKernels(false);
  DataTable t = MixedTable(200, 11);
  GSquareTest incremental(t);
  // Materialize codes and strata at the old size.
  (void)incremental.PValue(3, 5, {});
  (void)incremental.PValue(3, 5, {0});
  (void)incremental.PValue(3, 5, {0, 6});
  // Append rows drawn from the same level sets (MixedTable's generator only
  // emits {0,1}, {1}, {0,1,2}, {0,1} for the discrete/tied columns).
  const DataTable extra = MixedTable(64, 12);
  for (size_t r = 0; r < extra.NumRows(); ++r) {
    t.AddRow(extra.Row(r));
  }
  incremental.Update(t);
  GSquareTest cold(t);
  for (const auto& s :
       std::vector<std::vector<int>>{{}, {0}, {0, 6}, {4}, {0, 4, 6}}) {
    EXPECT_EQ(incremental.PValue(3, 5, s), cold.PValue(3, 5, s)) << "|s|=" << s.size();
  }
}

// Appends a row carrying a brand-new discrete level: extension is impossible
// bit-identically (codes are assigned in sorted-value order), so Update must
// fall back to a full recode — and still match a cold test exactly.
TEST(KernelEquivalence, IncrementalUpdateNewLevelFallsBackToRecode) {
  ReferenceModeGuard guard;
  simd::SetReferenceKernels(false);
  std::vector<Variable> vars = {
      {"d0", VarType::kDiscrete, VarRole::kOption, {0, 1, 2, 3}},
      {"d1", VarType::kDiscrete, VarRole::kOption, {0, 1, 2, 3}},
      {"d2", VarType::kDiscrete, VarRole::kOption, {0, 1, 2, 3}},
  };
  DataTable t(vars);
  Rng rng(13);
  for (int r = 0; r < 300; ++r) {
    // Levels {0, 2} only — level 1 is reserved for the appended rows, and it
    // sorts BETWEEN the existing levels, so every code shifts on recode.
    const double a = rng.Bernoulli(0.5) ? 0.0 : 2.0;
    t.AddRow({a, rng.Bernoulli(0.7) ? a : 2.0 - a, rng.Bernoulli(0.5) ? 0.0 : 2.0});
  }
  GSquareTest incremental(t);
  (void)incremental.PValue(0, 1, {});
  (void)incremental.PValue(0, 1, {2});
  for (int r = 0; r < 40; ++r) {
    t.AddRow({1.0, rng.Bernoulli(0.5) ? 0.0 : 1.0, 1.0});
  }
  incremental.Update(t);
  GSquareTest cold(t);
  EXPECT_EQ(incremental.PValue(0, 1, {}), cold.PValue(0, 1, {}));
  EXPECT_EQ(incremental.PValue(0, 1, {2}), cold.PValue(0, 1, {2}));
  EXPECT_EQ(incremental.PValue(0, 2, {1}), cold.PValue(0, 2, {1}));
}

// Quantile-binned continuous columns can never extend (appends shift the
// cuts); Update must recode them and match a cold test.
TEST(KernelEquivalence, IncrementalUpdateRecodesQuantileBinnedColumns) {
  ReferenceModeGuard guard;
  simd::SetReferenceKernels(false);
  std::vector<Variable> vars = {
      {"d", VarType::kDiscrete, VarRole::kOption, {0, 1, 2}},
      {"c", VarType::kContinuous, VarRole::kEvent, {}},
  };
  DataTable t(vars);
  Rng rng(17);
  for (int r = 0; r < 400; ++r) {
    const double d = static_cast<double>(rng.UniformInt(uint64_t{3}));
    t.AddRow({d, 1.5 * d + rng.Gaussian()});
  }
  GSquareTest incremental(t);
  (void)incremental.PValue(0, 1, {});
  for (int r = 0; r < 100; ++r) {
    const double d = static_cast<double>(rng.UniformInt(uint64_t{3}));
    t.AddRow({d, 1.5 * d + rng.Gaussian()});
  }
  incremental.Update(t);
  GSquareTest cold(t);
  EXPECT_EQ(incremental.PValue(0, 1, {}), cold.PValue(0, 1, {}));
}

TEST(KernelEquivalence, FisherUpdateMatchesFresh) {
  ReferenceModeGuard guard;
  simd::SetReferenceKernels(false);
  DataTable t = MixedTable(100, 19);
  FisherZTest updated(t);
  (void)updated.PValue(0, 1, {});
  const DataTable extra = MixedTable(50, 20);
  for (size_t r = 0; r < extra.NumRows(); ++r) {
    t.AddRow(extra.Row(r));
  }
  updated.Update(t);
  FisherZTest fresh(t);
  EXPECT_EQ(updated.PValue(0, 1, {}), fresh.PValue(0, 1, {}));
  EXPECT_EQ(updated.PValue(0, 1, {6}), fresh.PValue(0, 1, {6}));
  EXPECT_EQ(updated.PValue(0, 6, {1, 2}), fresh.PValue(0, 6, {1, 2}));
}

// FirstIndependent vs. the per-set serial loop it replaces: same index, same
// p-value, same early exit, and `calls` advances once per examined set.
template <typename TestT>
void CheckFirstIndependentEquivalence(const DataTable& t, int x, int y,
                                      const std::vector<std::vector<int>>& sets,
                                      double alpha) {
  TestT batched(t);
  TestT serial(t);
  // Manual serial loop — the exact code the skeleton search used to run.
  int want_idx = -1;
  double want_p = 0.0;
  for (size_t i = 0; i < sets.size(); ++i) {
    const double p = serial.PValue(x, y, sets[i]);
    if (p >= alpha) {
      want_idx = static_cast<int>(i);
      want_p = p;
      break;
    }
  }
  BatchedCIRequest req;
  req.x = x;
  req.y = y;
  req.sets = &sets;
  req.alpha = alpha;
  double got_p = 0.0;
  const int got_idx = batched.FirstIndependent(req, &got_p);
  EXPECT_EQ(got_idx, want_idx);
  if (want_idx >= 0) {
    EXPECT_EQ(got_p, want_p);
  }
  EXPECT_EQ(batched.calls.load(), serial.calls.load());
}

TEST(KernelEquivalence, FirstIndependentMatchesSerialLoop) {
  ReferenceModeGuard guard;
  simd::SetReferenceKernels(false);
  const DataTable t = MixedTable(500, 23);
  for (double alpha : {0.01, 0.05, 0.5, 1.0}) {
    // Continuous pair (dispatches to Fisher-z inside CompositeTest).
    CheckFirstIndependentEquivalence<CompositeTest>(t, 0, 1, ConditioningSets(0, 1), alpha);
    // Discrete pair (dispatches to the G-test).
    CheckFirstIndependentEquivalence<CompositeTest>(t, 3, 5, ConditioningSets(3, 5), alpha);
    CheckFirstIndependentEquivalence<GSquareTest>(t, 3, 5, ConditioningSets(3, 5), alpha);
    CheckFirstIndependentEquivalence<FisherZTest>(t, 0, 1, ConditioningSets(0, 1), alpha);
  }
  // Independent pair: early exit at index 0 for reasonable alpha.
  CheckFirstIndependentEquivalence<GSquareTest>(t, 3, 4, {{}, {0}}, 0.05);
  // Empty set list: no test runs, -1 comes back.
  CompositeTest test(t);
  const std::vector<std::vector<int>> empty;
  BatchedCIRequest req;
  req.x = 0;
  req.y = 1;
  req.sets = &empty;
  EXPECT_EQ(test.FirstIndependent(req), -1);
  EXPECT_EQ(test.calls.load(), 0);
}

TEST(KernelEquivalence, FirstIndependentOnEmptyTable) {
  ReferenceModeGuard guard;
  simd::SetReferenceKernels(false);
  std::vector<Variable> vars = {
      {"a", VarType::kDiscrete, VarRole::kOption, {0, 1}},
      {"b", VarType::kDiscrete, VarRole::kOption, {0, 1}},
  };
  const DataTable t(vars);
  CheckFirstIndependentEquivalence<GSquareTest>(t, 0, 1, {{}, {}}, 0.05);
}

}  // namespace
}  // namespace unicorn
