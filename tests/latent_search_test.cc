#include "causal/latent_search.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/entropy.h"

namespace unicorn {
namespace {

TEST(LatentSearchTest, IndependentPairNeedsNoLatent) {
  // p(x, y) = p(x) p(y): a constant Z (H = 0) renders them independent.
  std::vector<std::vector<double>> p = {{0.25, 0.25}, {0.25, 0.25}};
  Rng rng(1);
  LatentSearchOptions options;
  const auto result = LatentSearch(p, options, &rng);
  EXPECT_TRUE(result.independence_achieved);
  EXPECT_LT(result.latent_entropy, 0.2);
}

TEST(LatentSearchTest, CommonCauseRecovered) {
  // Z fair coin, X = Z, Y = Z: common entropy is exactly H(Z) = ln 2;
  // p(x, y) is diagonal.
  std::vector<std::vector<double>> p = {{0.5, 0.0}, {0.0, 0.5}};
  Rng rng(2);
  LatentSearchOptions options;
  const auto result = LatentSearch(p, options, &rng);
  EXPECT_TRUE(result.independence_achieved);
  EXPECT_NEAR(result.latent_entropy, std::log(2.0), 0.15);
}

TEST(LatentSearchTest, NoisyCommonCause) {
  // X, Y noisy copies of a fair coin Z.
  const double e = 0.1;
  std::vector<std::vector<double>> p(2, std::vector<double>(2, 0.0));
  for (int z = 0; z < 2; ++z) {
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        const double px = x == z ? 1 - e : e;
        const double py = y == z ? 1 - e : e;
        p[static_cast<size_t>(x)][static_cast<size_t>(y)] += 0.5 * px * py;
      }
    }
  }
  Rng rng(3);
  LatentSearchOptions options;
  options.cmi_tolerance = 0.02;
  const auto result = LatentSearch(p, options, &rng);
  EXPECT_TRUE(result.independence_achieved);
  // H(Z) should be close to ln 2 (can be a bit above due to noise).
  EXPECT_LT(result.latent_entropy, std::log(2.0) + 0.35);
}

TEST(LatentSearchTest, AchievedCmiReported) {
  std::vector<std::vector<double>> p = {{0.4, 0.1}, {0.1, 0.4}};
  Rng rng(4);
  LatentSearchOptions options;
  const auto result = LatentSearch(p, options, &rng);
  EXPECT_GE(result.achieved_cmi, 0.0);
}

TEST(LatentSearchTest, EmptyJointHandled) {
  Rng rng(5);
  LatentSearchOptions options;
  const auto result = LatentSearch({}, options, &rng);
  EXPECT_EQ(result.latent_entropy, 0.0);
}

TEST(LatentSearchTest, DeterministicRelationHasHighCommonEntropy) {
  // Y = X (uniform X over 4 values): any Z making X ⊥ Y | Z must carry all
  // the information, so H(Z) ~ H(X) = ln 4 — well above the 0.8 * min
  // entropy threshold used for confounder detection.
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  for (int i = 0; i < 4; ++i) {
    p[static_cast<size_t>(i)][static_cast<size_t>(i)] = 0.25;
  }
  Rng rng(6);
  LatentSearchOptions options;
  options.latent_cardinality = 4;
  const auto result = LatentSearch(p, options, &rng);
  if (result.independence_achieved) {
    EXPECT_GT(result.latent_entropy, 0.8 * std::log(4.0));
  }
}

// Sweep over beta: larger beta pushes harder on H(Z).
class BetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(BetaSweep, RunsAndReturnsFinite) {
  std::vector<std::vector<double>> p = {{0.3, 0.2}, {0.2, 0.3}};
  Rng rng(7);
  LatentSearchOptions options;
  options.beta = GetParam();
  const auto result = LatentSearch(p, options, &rng);
  EXPECT_TRUE(std::isfinite(result.latent_entropy));
  EXPECT_GE(result.latent_entropy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Betas, BetaSweep, ::testing::Values(0.0, 0.05, 0.2, 0.5));

}  // namespace
}  // namespace unicorn
