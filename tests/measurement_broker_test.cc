#include "unicorn/measurement_broker.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "sysmodel/systems.h"

namespace unicorn {
namespace {

PerformanceTask MakeTask(uint64_t seed) {
  SystemSpec spec;
  spec.num_events = 8;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  return MakeSimulatedTask(model, Tx2(), DefaultWorkload(), seed);
}

std::vector<std::vector<double>> SampleBatch(const PerformanceTask& task, size_t count,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < count; ++i) {
    configs.push_back(task.sample_config(&rng));
  }
  return configs;
}

TEST(MeasurementBrokerTest, HarnessMeasurementIsPurePerConfig) {
  // The broker's guarantees rest on this: measuring is a pure function of
  // the configuration (per-call RNG from the config hash), so repeat calls
  // are bit-identical regardless of what was measured in between.
  const PerformanceTask task = MakeTask(1);
  const auto configs = SampleBatch(task, 3, 2);
  const auto first = task.measure(configs[0]);
  task.measure(configs[1]);
  task.measure(configs[2]);
  EXPECT_EQ(task.measure(configs[0]), first);
}

TEST(MeasurementBrokerTest, BatchMatchesSerialAtAnyThreadCount) {
  const PerformanceTask task = MakeTask(3);
  auto configs = SampleBatch(task, 40, 4);
  // Duplicates sprinkled in to exercise the dedup path too.
  for (size_t i = 0; i < 10; ++i) {
    configs.push_back(configs[i * 3]);
  }

  // Serial ground truth: one direct measure call per request, in order.
  std::vector<std::vector<double>> reference;
  for (const auto& config : configs) {
    reference.push_back(task.measure(config));
  }

  for (int threads : {1, 2, 4}) {
    for (bool dedup : {true, false}) {
      BrokerOptions options;
      options.num_threads = threads;
      options.dedup_cache = dedup;
      MeasurementBroker broker(task, options);
      EXPECT_EQ(broker.MeasureBatch(configs), reference)
          << "threads=" << threads << " dedup=" << dedup;
    }
  }
}

TEST(MeasurementBrokerTest, DuplicatesMeasuredOnceWithAccounting) {
  const PerformanceTask task = MakeTask(5);
  auto configs = SampleBatch(task, 20, 6);
  for (size_t i = 0; i < 10; ++i) {
    configs.push_back(configs[i]);  // within-batch duplicates
  }

  BrokerOptions options;
  options.num_threads = 4;
  MeasurementBroker broker(task, options);
  broker.MeasureBatch(configs);
  EXPECT_EQ(broker.stats().requests, 30u);
  EXPECT_EQ(broker.stats().measured, 20u);
  EXPECT_EQ(broker.stats().cache_hits, 10u);

  // The same batch again: everything is in the canonical-config cache now.
  broker.MeasureBatch(configs);
  EXPECT_EQ(broker.stats().requests, 60u);
  EXPECT_EQ(broker.stats().measured, 20u);
  EXPECT_EQ(broker.stats().cache_hits, 40u);
  EXPECT_DOUBLE_EQ(broker.stats().CacheHitRate(), 40.0 / 60.0);
  EXPECT_EQ(broker.stats().batches, 2u);
  EXPECT_EQ(broker.stats().largest_batch, 30u);
}

TEST(MeasurementBrokerTest, SingleMeasureSharesTheCache) {
  const PerformanceTask task = MakeTask(7);
  const auto configs = SampleBatch(task, 1, 8);
  MeasurementBroker broker(task);
  const auto row = broker.Measure(configs[0]);
  EXPECT_EQ(broker.Measure(configs[0]), row);
  EXPECT_EQ(broker.stats().measured, 1u);
  EXPECT_EQ(broker.stats().cache_hits, 1u);
}

TEST(MeasurementBrokerTest, DedupDisabledMeasuresEveryRequest) {
  const PerformanceTask task = MakeTask(9);
  auto configs = SampleBatch(task, 5, 10);
  configs.push_back(configs[0]);

  BrokerOptions options;
  options.dedup_cache = false;
  MeasurementBroker broker(task, options);
  broker.MeasureBatch(configs);
  broker.MeasureBatch(configs);
  EXPECT_EQ(broker.stats().measured, 12u);
  EXPECT_EQ(broker.stats().cache_hits, 0u);
}

}  // namespace
}  // namespace unicorn
