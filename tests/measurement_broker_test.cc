#include "unicorn/measurement_broker.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "eval/harness.h"
#include "sysmodel/systems.h"

namespace unicorn {
namespace {

PerformanceTask MakeTask(uint64_t seed) {
  SystemSpec spec;
  spec.num_events = 8;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  return MakeSimulatedTask(model, Tx2(), DefaultWorkload(), seed);
}

std::vector<std::vector<double>> SampleBatch(const PerformanceTask& task, size_t count,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < count; ++i) {
    configs.push_back(task.sample_config(&rng));
  }
  return configs;
}

TEST(MeasurementBrokerTest, HarnessMeasurementIsPurePerConfig) {
  // The broker's guarantees rest on this: measuring is a pure function of
  // the configuration (per-call RNG from the config hash), so repeat calls
  // are bit-identical regardless of what was measured in between.
  const PerformanceTask task = MakeTask(1);
  const auto configs = SampleBatch(task, 3, 2);
  const auto first = task.measure(configs[0]);
  task.measure(configs[1]);
  task.measure(configs[2]);
  EXPECT_EQ(task.measure(configs[0]), first);
}

TEST(MeasurementBrokerTest, BatchMatchesSerialAtAnyThreadCount) {
  const PerformanceTask task = MakeTask(3);
  auto configs = SampleBatch(task, 40, 4);
  // Duplicates sprinkled in to exercise the dedup path too.
  for (size_t i = 0; i < 10; ++i) {
    configs.push_back(configs[i * 3]);
  }

  // Serial ground truth: one direct measure call per request, in order.
  std::vector<std::vector<double>> reference;
  for (const auto& config : configs) {
    reference.push_back(task.measure(config));
  }

  for (int threads : {1, 2, 4}) {
    for (bool dedup : {true, false}) {
      BrokerOptions options;
      options.num_threads = threads;
      options.dedup_cache = dedup;
      MeasurementBroker broker(task, options);
      EXPECT_EQ(broker.MeasureBatch(configs), reference)
          << "threads=" << threads << " dedup=" << dedup;
    }
  }
}

TEST(MeasurementBrokerTest, DuplicatesMeasuredOnceWithAccounting) {
  const PerformanceTask task = MakeTask(5);
  auto configs = SampleBatch(task, 20, 6);
  for (size_t i = 0; i < 10; ++i) {
    configs.push_back(configs[i]);  // within-batch duplicates
  }

  BrokerOptions options;
  options.num_threads = 4;
  MeasurementBroker broker(task, options);
  broker.MeasureBatch(configs);
  EXPECT_EQ(broker.stats().requests, 30u);
  EXPECT_EQ(broker.stats().measured, 20u);
  EXPECT_EQ(broker.stats().cache_hits, 10u);

  // The same batch again: everything is in the canonical-config cache now.
  broker.MeasureBatch(configs);
  EXPECT_EQ(broker.stats().requests, 60u);
  EXPECT_EQ(broker.stats().measured, 20u);
  EXPECT_EQ(broker.stats().cache_hits, 40u);
  EXPECT_DOUBLE_EQ(broker.stats().CacheHitRate(), 40.0 / 60.0);
  EXPECT_EQ(broker.stats().batches, 2u);
  EXPECT_EQ(broker.stats().largest_batch, 30u);
}

TEST(MeasurementBrokerTest, SingleMeasureSharesTheCache) {
  const PerformanceTask task = MakeTask(7);
  const auto configs = SampleBatch(task, 1, 8);
  MeasurementBroker broker(task);
  const auto row = broker.Measure(configs[0]);
  EXPECT_EQ(broker.Measure(configs[0]), row);
  EXPECT_EQ(broker.stats().measured, 1u);
  EXPECT_EQ(broker.stats().cache_hits, 1u);
}

TEST(MeasurementBrokerTest, WallAndBusyTimeAreAccountedSeparately) {
  const PerformanceTask task = MakeTask(11);
  const auto configs = SampleBatch(task, 16, 12);
  BrokerOptions options;
  options.num_threads = 4;
  MeasurementBroker broker(task, options);
  broker.MeasureBatch(configs);
  // Busy time sums one timing per measurement; wall time is recorded once
  // per batch on the calling thread. On a multi-core host busy can exceed
  // wall (that was the old bug, fanned out the other way); both are always
  // positive once something measured.
  EXPECT_GT(broker.stats().batch_wall_seconds, 0.0);
  EXPECT_GT(broker.stats().busy_seconds, 0.0);
}

TEST(MeasurementBrokerTest, SyncPathActiveWallEqualsBatchWall) {
  // On the synchronous (pool) path there is no overlap between batches, so
  // the active-wall interval union degenerates to exactly the per-batch
  // fan-out wall: the new utilization denominator must equal the old one
  // bit-for-bit (the split only diverges under async SubmitBatch, where
  // batch_wall undercounts overlapped submissions).
  const PerformanceTask task = MakeTask(21);
  BrokerOptions options;
  options.num_threads = 2;
  MeasurementBroker broker(task, options);
  broker.MeasureBatch(SampleBatch(task, 12, 22));
  broker.MeasureBatch(SampleBatch(task, 8, 23));
  const BrokerStats stats = broker.stats();
  EXPECT_DOUBLE_EQ(stats.active_wall_seconds, stats.batch_wall_seconds);
  EXPECT_GT(stats.active_wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.Utilization(), stats.busy_seconds / stats.active_wall_seconds);
}

TEST(MeasurementBrokerTest, SaveCacheLoadCacheRoundTripsBitExactly) {
  const PerformanceTask task = MakeTask(13);
  const auto configs = SampleBatch(task, 20, 14);
  const std::string path = ::testing::TempDir() + "broker_cache_roundtrip.csv";

  MeasurementBroker first(task);
  const auto reference = first.MeasureBatch(configs);
  ASSERT_TRUE(first.SaveCache(path));

  // A fresh broker warm-started from the file serves the whole batch from
  // cache: zero live measurements, rows bit-identical.
  MeasurementBroker second(task);
  EXPECT_EQ(second.LoadCache(path), configs.size());
  EXPECT_EQ(second.MeasureBatch(configs), reference);
  EXPECT_EQ(second.stats().measured, 0u);
  EXPECT_EQ(second.stats().cache_hits, configs.size());

  // Loading again adds nothing (entries already present).
  EXPECT_EQ(second.LoadCache(path), 0u);
  std::remove(path.c_str());
}

// Environment tags partition the dedup cache — the same configuration in
// two environments is two requests — and SaveCache persists each entry's
// tag as the v2 provenance column, which survives a load round trip and
// which RecordedBackend adopts as its routing tag.
TEST(MeasurementBrokerTest, EnvironmentTagsPartitionCacheAndPersistAsProvenance) {
  const PerformanceTask task = MakeTask(41);
  const auto configs = SampleBatch(task, 6, 42);
  const std::string path = ::testing::TempDir() + "broker_cache_provenance.csv";

  MeasurementBroker broker(task);
  broker.MeasureBatch(configs, std::vector<std::string>(configs.size(), "Xavier"));
  EXPECT_EQ(broker.stats().measured, configs.size());
  // Same configs, different tag: measured again, not served from cache.
  broker.MeasureBatch(configs, std::vector<std::string>(configs.size(), "TX2"));
  EXPECT_EQ(broker.stats().measured, 2 * configs.size());
  EXPECT_EQ(broker.stats().cache_hits, 0u);
  // Same configs, same tag: pure cache hits.
  broker.MeasureBatch(configs, std::vector<std::string>(configs.size(), "Xavier"));
  EXPECT_EQ(broker.stats().cache_hits, configs.size());
  ASSERT_TRUE(broker.SaveCache(path));

  MeasurementTable table;
  ASSERT_TRUE(LoadMeasurementTable(path, &table));
  ASSERT_EQ(table.entries.size(), 2 * configs.size());
  EXPECT_EQ(table.entries.front().provenance, "Xavier");
  EXPECT_EQ(table.entries.back().provenance, "TX2");
  EXPECT_EQ(table.UniformProvenance(), "");  // mixed labels

  // A fresh broker warm-started from the file keeps the partition.
  MeasurementBroker second(task);
  EXPECT_EQ(second.LoadCache(path), 2 * configs.size());
  second.MeasureBatch(configs, std::vector<std::string>(configs.size(), "Xavier"));
  EXPECT_EQ(second.stats().measured, 0u);
  second.MeasureBatch(configs);  // untagged: not in cache, measured fresh
  EXPECT_EQ(second.stats().measured, configs.size());
  std::remove(path.c_str());
}

TEST(MeasurementBrokerTest, LoadCacheRejectsMismatchedTaskShape) {
  const PerformanceTask task = MakeTask(15);
  const std::string path = ::testing::TempDir() + "broker_cache_mismatch.csv";
  {
    MeasurementBroker broker(task);
    broker.MeasureBatch(SampleBatch(task, 5, 16));
    ASSERT_TRUE(broker.SaveCache(path));
  }
  // A task with a different variable layout must not absorb the file.
  SystemSpec spec;
  spec.num_events = 4;
  auto other_model = std::make_shared<SystemModel>(BuildSystem(SystemId::kSqlite, spec));
  const PerformanceTask other = MakeSimulatedTask(other_model, Tx2(), DefaultWorkload(), 17);
  MeasurementBroker broker(other);
  EXPECT_EQ(broker.LoadCache(path), 0u);
  std::remove(path.c_str());
}

TEST(MeasurementBrokerTest, AsyncSubmitBatchStreamsCompletions) {
  const PerformanceTask task = MakeTask(19);
  auto configs = SampleBatch(task, 12, 20);
  configs.push_back(configs[0]);  // dedup works on the async path too

  MeasurementBroker reference_broker(task);
  const auto reference = reference_broker.MeasureBatch(configs);

  MeasurementBroker broker(task);
  const BatchTicket first = broker.SubmitBatch(configs);
  const BatchTicket second = broker.SubmitBatch(configs);  // all cache hits
  EXPECT_EQ(first.size, configs.size());
  EXPECT_EQ(broker.OutstandingRequests(), 2 * configs.size());

  std::vector<std::vector<double>> rows_first(configs.size());
  std::vector<std::vector<double>> rows_second(configs.size());
  BrokerCompletion done;
  size_t received = 0;
  while (broker.WaitCompletion(&done)) {
    ASSERT_TRUE(done.ok);
    ASSERT_LT(done.index, configs.size());
    (done.batch == first.id ? rows_first : rows_second)[done.index] = done.row;
    ++received;
  }
  EXPECT_EQ(received, 2 * configs.size());
  EXPECT_EQ(broker.OutstandingRequests(), 0u);
  EXPECT_EQ(rows_first, reference);
  EXPECT_EQ(rows_second, reference);
  EXPECT_EQ(broker.stats().measured, 12u);  // one live measurement per unique config
}

TEST(MeasurementBrokerTest, DedupDisabledMeasuresEveryRequest) {
  const PerformanceTask task = MakeTask(9);
  auto configs = SampleBatch(task, 5, 10);
  configs.push_back(configs[0]);

  BrokerOptions options;
  options.dedup_cache = false;
  MeasurementBroker broker(task, options);
  broker.MeasureBatch(configs);
  broker.MeasureBatch(configs);
  EXPECT_EQ(broker.stats().measured, 12u);
  EXPECT_EQ(broker.stats().cache_hits, 0u);
}

}  // namespace
}  // namespace unicorn
