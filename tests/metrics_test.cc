#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace unicorn {
namespace {

TEST(JaccardTest, PerfectMatch) {
  const std::vector<double> w = {1, 1, 1, 1};
  EXPECT_EQ(AceWeightedJaccard({0, 2}, {0, 2}, w), 1.0);
}

TEST(JaccardTest, Disjoint) {
  const std::vector<double> w = {1, 1, 1, 1};
  EXPECT_EQ(AceWeightedJaccard({0}, {1}, w), 0.0);
}

TEST(JaccardTest, WeightsMatter) {
  // Predicted hits the heavy-weight cause, misses a light one.
  const std::vector<double> w = {10.0, 1.0, 0.0};
  EXPECT_NEAR(AceWeightedJaccard({0}, {0, 1}, w), 10.0 / 11.0, 1e-12);
}

TEST(JaccardTest, BothEmptyIsOne) {
  EXPECT_EQ(AceWeightedJaccard({}, {}, {}), 1.0);
}

TEST(JaccardTest, MissingWeightDefaultsToOne) {
  EXPECT_NEAR(AceWeightedJaccard({5}, {5, 6}, {}), 0.5, 1e-12);
}

TEST(PrecisionRecallTest, Basics) {
  EXPECT_NEAR(Precision({1, 2, 3}, {1, 2}), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Recall({1, 2, 3}, {1, 2}), 1.0, 1e-12);
  EXPECT_NEAR(Recall({1}, {1, 2, 3, 4}), 0.25, 1e-12);
}

TEST(PrecisionRecallTest, EmptyEdgeCases) {
  EXPECT_EQ(Precision({}, {}), 1.0);
  EXPECT_EQ(Precision({}, {1}), 0.0);
  EXPECT_EQ(Recall({1}, {}), 1.0);
}

TEST(GainTest, Improvement) {
  EXPECT_NEAR(Gain(100.0, 25.0), 75.0, 1e-12);
  EXPECT_NEAR(Gain(100.0, 100.0), 0.0, 1e-12);
}

TEST(GainTest, Deterioration) { EXPECT_NEAR(Gain(100.0, 150.0), -50.0, 1e-12); }

TEST(GainTest, ZeroFault) { EXPECT_EQ(Gain(0.0, 10.0), 0.0); }

TEST(ParetoTest, FrontExtraction) {
  const auto front = ParetoFront2D({{1, 5}, {2, 4}, {3, 3}, {2, 6}, {4, 4}});
  // Dominated points (2,6) and (4,4) must vanish.
  EXPECT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], (std::pair<double, double>{1, 5}));
  EXPECT_EQ(front[2], (std::pair<double, double>{3, 3}));
}

TEST(ParetoTest, SinglePoint) {
  const auto front = ParetoFront2D({{2, 2}});
  EXPECT_EQ(front.size(), 1u);
}

TEST(HypervolumeTest, SingleRectangle) {
  // Point (1, 1) with reference (3, 3): HV = 2 * 2 = 4.
  EXPECT_NEAR(Hypervolume2D({{1, 1}}, 3, 3), 4.0, 1e-12);
}

TEST(HypervolumeTest, TwoPointsUnion) {
  // Points (1, 2) and (2, 1), ref (3, 3): union area = 2*1 + 1*2 + 1*1 = 3+...
  // compute: (3-1)(3-2)=2 for (1,2); (3-2)(3-1)=2 for (2,1); overlap (1..3 x
  // ...) sweep formula gives 3.
  EXPECT_NEAR(Hypervolume2D({{1, 2}, {2, 1}}, 3, 3), 3.0, 1e-12);
}

TEST(HypervolumeTest, DominatedPointAddsNothing) {
  const double hv1 = Hypervolume2D({{1, 1}}, 3, 3);
  const double hv2 = Hypervolume2D({{1, 1}, {2, 2}}, 3, 3);
  EXPECT_NEAR(hv1, hv2, 1e-12);
}

TEST(HypervolumeTest, PointsBeyondReferenceClamped) {
  EXPECT_NEAR(Hypervolume2D({{5, 5}}, 3, 3), 0.0, 1e-12);
}

TEST(HypervolumeErrorTest, PerfectFrontZeroError) {
  const std::vector<std::pair<double, double>> front = {{1, 2}, {2, 1}};
  EXPECT_NEAR(HypervolumeError(front, front, 3, 3), 0.0, 1e-12);
}

TEST(HypervolumeErrorTest, WorseFrontPositiveError) {
  const std::vector<std::pair<double, double>> ref = {{1, 1}};
  const std::vector<std::pair<double, double>> worse = {{2, 2}};
  const double err = HypervolumeError(worse, ref, 3, 3);
  EXPECT_GT(err, 0.0);
  EXPECT_LE(err, 1.0);
}

}  // namespace
}  // namespace unicorn
