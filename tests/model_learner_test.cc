#include "unicorn/model_learner.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "graph/algorithms.h"
#include "sysmodel/systems.h"

namespace unicorn {
namespace {

TEST(ModelLearnerTest, ProducesValidAdmg) {
  SystemSpec spec;
  spec.num_events = 8;
  const auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  Rng rng(1);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 300; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  const LearnedModel learned = LearnCausalPerformanceModel(data);
  EXPECT_TRUE(learned.admg.IsAdmg());
  EXPECT_EQ(learned.admg.NumCircleMarks(), 0u);
  EXPECT_GT(learned.independence_tests, 0);
}

TEST(ModelLearnerTest, OptionsStayExogenous) {
  SystemSpec spec;
  spec.num_events = 6;
  const auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kX264, spec));
  Rng rng(2);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 250; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  const LearnedModel learned = LearnCausalPerformanceModel(data);
  for (size_t opt : model->OptionIndices()) {
    EXPECT_TRUE(learned.admg.Parents(opt).empty()) << "option " << opt << " has parents";
    EXPECT_TRUE(learned.admg.Spouses(opt).empty());
  }
}

TEST(ModelLearnerTest, ObjectivesAreSinks) {
  SystemSpec spec;
  spec.num_events = 6;
  const auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kBert, spec));
  Rng rng(3);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 250; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  const LearnedModel learned = LearnCausalPerformanceModel(data);
  for (size_t obj : model->ObjectiveIndices()) {
    EXPECT_TRUE(learned.admg.Children(obj).empty()) << "objective " << obj << " has children";
  }
}

TEST(ModelLearnerTest, MoreDataImprovesStructure) {
  // SHD to ground truth should not get (much) worse with 4x the data —
  // the paper's Fig. 11a convergence property.
  SystemSpec spec;
  spec.num_events = 6;
  const auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kX264, spec));
  const MixedGraph truth = model->GroundTruthGraph();
  Rng rng(4);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 600; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable all = model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  std::vector<size_t> head;
  for (size_t r = 0; r < 100; ++r) {
    head.push_back(r);
  }
  const DataTable small = all.SelectRows(head);
  const size_t shd_small =
      StructuralHammingDistance(LearnCausalPerformanceModel(small).admg, truth);
  const size_t shd_large =
      StructuralHammingDistance(LearnCausalPerformanceModel(all).admg, truth);
  EXPECT_LE(shd_large, shd_small + 5);
}

TEST(ModelLearnerTest, DeterministicGivenSeed) {
  SystemSpec spec;
  spec.num_events = 5;
  const auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kX264, spec));
  Rng rng(5);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 150; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  CausalModelOptions options;
  options.seed = 77;
  const LearnedModel a = LearnCausalPerformanceModel(data, options);
  const LearnedModel b = LearnCausalPerformanceModel(data, options);
  EXPECT_EQ(StructuralHammingDistance(a.admg, b.admg), 0u);
}

}  // namespace
}  // namespace unicorn
