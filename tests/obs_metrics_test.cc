#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/json.h"

// Under UNICORN_NO_OBS the instruments are inline no-ops; these tests then
// only pin that the API stays callable (the NO_OBS CI job compiles and runs
// this binary). The numeric assertions run in the default build.

namespace unicorn {
namespace obs {
namespace {

TEST(ObsMetricsTest, CounterMergesShardsAcrossThreads) {
  Counter* counter = MetricsRegistry::Global().Counter("test.counter.hammer");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
#ifndef UNICORN_NO_OBS
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
#else
  EXPECT_EQ(counter->Value(), 0u);
#endif
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge* gauge = MetricsRegistry::Global().Gauge("test.gauge.level");
  gauge->Set(3.0);
  gauge->Add(2.5);
#ifndef UNICORN_NO_OBS
  EXPECT_DOUBLE_EQ(gauge->Value(), 5.5);
#endif
}

#ifndef UNICORN_NO_OBS

TEST(ObsMetricsTest, RegistryInternsInstrumentsByName) {
  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.Counter("test.intern"), registry.Counter("test.intern"));
  EXPECT_EQ(registry.Gauge("test.intern.g"), registry.Gauge("test.intern.g"));
  EXPECT_EQ(registry.Histogram("test.intern.h"), registry.Histogram("test.intern.h"));
  EXPECT_NE(registry.Counter("test.intern"), registry.Counter("test.intern2"));
}

TEST(ObsMetricsTest, BucketBoundariesRoundTrip) {
  // A value exactly on a bucket's upper boundary must land in that bucket —
  // this is what makes boundary percentiles exact.
  for (size_t i : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{63},
                   size_t{100}, size_t{317}, Histogram::kNumBuckets - 1}) {
    EXPECT_EQ(Histogram::BucketFor(Histogram::UpperBound(i)), i) << "bucket " << i;
  }
  // Just above a boundary spills into the next bucket.
  EXPECT_EQ(Histogram::BucketFor(Histogram::UpperBound(10) * 1.0000001), 11u);
  // Below range clamps to bucket 0; NaN and negatives too (defensive).
  EXPECT_EQ(Histogram::BucketFor(0.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(std::nan("")), 0u);
  // Above range clamps to the last bucket.
  EXPECT_EQ(Histogram::BucketFor(1e300), Histogram::kNumBuckets - 1);
}

TEST(ObsMetricsTest, PercentilesExactAtBucketBoundaries) {
  Histogram* hist = MetricsRegistry::Global().Histogram("test.hist.exact");
  // 90 samples on one boundary, 10 on a higher one: nearest-rank p50 sits in
  // the low bucket, p95 and p99 in the high one — and because the samples
  // are exactly on boundaries, the reported percentiles are exact, not
  // bucket-rounded.
  const double low = Histogram::UpperBound(40);
  const double high = Histogram::UpperBound(80);
  for (int i = 0; i < 90; ++i) {
    hist->Record(low);
  }
  for (int i = 0; i < 10; ++i) {
    hist->Record(high);
  }
  const Histogram::Snapshot snap = hist->TakeSnapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), low);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.90), low);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.95), high);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), high);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), high);
  EXPECT_NEAR(snap.sum, 90.0 * low + 10.0 * high, 1e-9 * snap.sum);
  EXPECT_NEAR(snap.Mean(), snap.sum / 100.0, 1e-12);
}

TEST(ObsMetricsTest, HistogramMergesShardsAcrossThreads) {
  Histogram* hist = MetricsRegistry::Global().Histogram("test.hist.hammer");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  const double value = Histogram::UpperBound(100);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, value] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Record(value);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const Histogram::Snapshot snap = hist->TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), value);
  EXPECT_NEAR(snap.sum, kThreads * kPerThread * value, 1e-6 * snap.sum);
}

TEST(ObsMetricsTest, SnapshotJsonParsesAndCarriesValues) {
  auto& registry = MetricsRegistry::Global();
  registry.Counter("test.json.counter")->Add(42);
  registry.Gauge("test.json.gauge")->Set(2.25);
  registry.Histogram("test.json.hist")->Record(Histogram::UpperBound(50));

  std::string error;
  const json::ValuePtr root = json::Parse(registry.SnapshotJson(), &error);
  ASSERT_NE(root, nullptr) << error;
  ASSERT_TRUE(root->is_object());

  const json::Value* counters = root->Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* counter = counters->Find("test.json.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->NumberOr(-1.0), 42.0);

  const json::Value* gauges = root->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const json::Value* gauge = gauges->Find("test.json.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->NumberOr(-1.0), 2.25);

  const json::Value* hists = root->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* hist = hists->Find("test.json.hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->is_object());
  EXPECT_DOUBLE_EQ(hist->Find("count")->NumberOr(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("p50")->NumberOr(-1.0), Histogram::UpperBound(50));
  EXPECT_NE(hist->Find("p95"), nullptr);
  EXPECT_NE(hist->Find("p99"), nullptr);
  EXPECT_NE(hist->Find("mean"), nullptr);
  EXPECT_NE(hist->Find("max"), nullptr);
}

TEST(ObsMetricsTest, ResetForTestZeroesEverything) {
  auto& registry = MetricsRegistry::Global();
  obs::Counter* counter = registry.Counter("test.reset.counter");
  obs::Histogram* hist = registry.Histogram("test.reset.hist");
  counter->Add(7);
  hist->Record(1.0);
  registry.ResetForTest();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(hist->TakeSnapshot().count, 0u);
  // Pointers stay valid and usable after reset.
  counter->Increment();
  EXPECT_EQ(counter->Value(), 1u);
}

#endif  // UNICORN_NO_OBS

}  // namespace
}  // namespace obs
}  // namespace unicorn
