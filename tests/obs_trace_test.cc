#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"

// Under UNICORN_NO_OBS every call here is an inline no-op; the numeric
// assertions are gated so the NO_OBS CI job still compiles and runs this
// binary (pinning that instrumented code builds in that configuration).

namespace unicorn {
namespace obs {
namespace trace {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    Clear();
  }
  void TearDown() override {
    SetEnabled(false);
    Clear();
  }
};

size_t CountByName(const std::vector<Event>& events, const char* name) {
  return static_cast<size_t>(
      std::count_if(events.begin(), events.end(), [name](const Event& ev) {
        return ev.name != nullptr && std::strcmp(ev.name, name) == 0;
      }));
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  Begin("t.span", "test");
  End();
  Instant("t.instant", "test");
  CounterValue("t.counter", 1.0);
  EXPECT_TRUE(Collect().empty());
}

#ifndef UNICORN_NO_OBS

TEST_F(TraceTest, SpansNestStrictlyPerThread) {
  SetEnabled(true);
  {
    TRACE_SPAN_NAMED(outer, "t.outer", "test");
    outer.SetArg("k", 1.0);
    { TRACE_SPAN("t.inner", "test"); }
    { TRACE_SPAN("t.inner", "test"); }
  }
  SetEnabled(false);

  const std::vector<Event> events = Collect();
  ASSERT_EQ(events.size(), 3u);
  ASSERT_EQ(CountByName(events, "t.outer"), 1u);
  ASSERT_EQ(CountByName(events, "t.inner"), 2u);
  const Event* outer = nullptr;
  std::vector<const Event*> inner;
  for (const Event& ev : events) {
    EXPECT_EQ(ev.phase, 'X');
    if (std::strcmp(ev.name, "t.outer") == 0) {
      outer = &ev;
    } else {
      inner.push_back(&ev);
    }
  }
  // Same thread, and both inner spans sit fully inside the outer's window.
  for (const Event* child : inner) {
    EXPECT_EQ(child->tid, outer->tid);
    EXPECT_GE(child->ts_us, outer->ts_us);
    EXPECT_LE(child->ts_us + child->dur_us, outer->ts_us + outer->dur_us + 0.5);
  }
  // Args attached at close.
  ASSERT_NE(outer->arg_key[0], nullptr);
  EXPECT_STREQ(outer->arg_key[0], "k");
  EXPECT_DOUBLE_EQ(outer->arg_value[0], 1.0);
}

TEST_F(TraceTest, ThreadsGetDistinctTidsAndNames) {
  SetEnabled(true);
  std::thread worker([] {
    SetThreadName("test-worker");
    TRACE_SPAN("t.worker", "test");
  });
  worker.join();
  {
    TRACE_SPAN("t.main", "test");
  }
  SetEnabled(false);

  const std::vector<Event> events = Collect();
  ASSERT_EQ(events.size(), 2u);
  const Event* worker_ev = nullptr;
  const Event* main_ev = nullptr;
  for (const Event& ev : events) {
    (std::strcmp(ev.name, "t.worker") == 0 ? worker_ev : main_ev) = &ev;
  }
  ASSERT_NE(worker_ev, nullptr);
  ASSERT_NE(main_ev, nullptr);
  EXPECT_NE(worker_ev->tid, main_ev->tid);
  bool found_name = false;
  for (const auto& [tid, name] : ThreadNames()) {
    if (tid == worker_ev->tid) {
      EXPECT_EQ(name, "test-worker");
      found_name = true;
    }
  }
  EXPECT_TRUE(found_name);
}

TEST_F(TraceTest, MidRunToggleKeepsStacksBalanced) {
  // Begin while disabled, enable, End: the End must consume the skipped
  // Begin, not close an unrelated span.
  SetEnabled(true);
  Begin("t.outer", "test");
  SetEnabled(false);
  Begin("t.skipped", "test");
  SetEnabled(true);
  End();  // closes t.skipped (skipped: no event)
  End();  // closes t.outer
  SetEnabled(false);

  const std::vector<Event> events = Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "t.outer");
}

TEST_F(TraceTest, WriteFileEmitsParseableChromeTraceJson) {
  SetEnabled(true);
  SetThreadName("main-test-thread");
  {
    TRACE_SPAN_NAMED(span, "t.span", "test");
    span.SetArg("rows", 12.0);
  }
  Instant("t.mark", "test", "attempt", 2.0);
  CounterValue("t.level", 5.0);
  SetEnabled(false);

  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(WriteFile(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::string error;
  const json::ValuePtr root = json::Parse(buffer.str(), &error);
  ASSERT_NE(root, nullptr) << error;
  const json::Value* events = root->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_span = false, saw_instant = false, saw_counter = false, saw_meta = false;
  for (const auto& ev : events->array_value) {
    ASSERT_TRUE(ev->is_object());
    const std::string& name = ev->Find("name")->StringOr("");
    const std::string& ph = ev->Find("ph")->StringOr("");
    ASSERT_NE(ev->Find("pid"), nullptr);
    ASSERT_NE(ev->Find("tid"), nullptr);
    if (name == "t.span") {
      saw_span = true;
      EXPECT_EQ(ph, "X");
      EXPECT_GE(ev->Find("dur")->NumberOr(-1.0), 0.0);
      EXPECT_DOUBLE_EQ(ev->Find("args")->Find("rows")->NumberOr(-1.0), 12.0);
    } else if (name == "t.mark") {
      saw_instant = true;
      EXPECT_EQ(ph, "i");
      EXPECT_DOUBLE_EQ(ev->Find("args")->Find("attempt")->NumberOr(-1.0), 2.0);
    } else if (name == "t.level") {
      saw_counter = true;
      EXPECT_EQ(ph, "C");
    } else if (name == "thread_name") {
      EXPECT_EQ(ph, "M");
      if (ev->Find("args")->Find("name")->StringOr("") == "main-test-thread") {
        saw_meta = true;
      }
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_meta);
}

TEST_F(TraceTest, ClearDropsEventsAndKeepsTracingUsable) {
  SetEnabled(true);
  { TRACE_SPAN("t.before", "test"); }
  Clear();
  EXPECT_TRUE(Collect().empty());
  EXPECT_EQ(DroppedEvents(), 0u);
  { TRACE_SPAN("t.after", "test"); }
  SetEnabled(false);
  const std::vector<Event> events = Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "t.after");
}

#endif  // UNICORN_NO_OBS

}  // namespace
}  // namespace trace
}  // namespace obs
}  // namespace unicorn
