#include "unicorn/optimizer.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "sysmodel/systems.h"

namespace unicorn {
namespace {

PerformanceTask MakeTask(std::shared_ptr<SystemModel>* model_out, uint64_t seed) {
  SystemSpec spec;
  spec.num_events = 8;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  *model_out = model;
  return MakeSimulatedTask(model, Tx2(), DefaultWorkload(), seed);
}

OptimizeOptions FastOptions(size_t iterations = 30) {
  OptimizeOptions options;
  options.initial_samples = 20;
  options.max_iterations = iterations;
  options.relearn_every = 10;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 16;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 25;
  return options;
}

TEST(OptimizerTest, TrajectoryMonotoneNonIncreasing) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 200);
  UnicornOptimizer optimizer(task, FastOptions());
  const auto result = optimizer.Minimize(model->ObjectiveIndices()[0]);
  ASSERT_FALSE(result.best_trajectory.empty());
  for (size_t i = 1; i < result.best_trajectory.size(); ++i) {
    EXPECT_LE(result.best_trajectory[i], result.best_trajectory[i - 1] + 1e-12);
  }
}

TEST(OptimizerTest, BeatsInitialSamples) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 201);
  OptimizeOptions options = FastOptions(60);
  UnicornOptimizer optimizer(task, options);
  const auto result = optimizer.Minimize(model->ObjectiveIndices()[0]);
  // The optimum found must improve on the best of the initial random batch.
  const double best_initial =
      result.best_trajectory[options.initial_samples - 1];
  EXPECT_LE(result.best_value, best_initial);
  EXPECT_EQ(result.measurements_used, options.initial_samples + options.max_iterations);
}

// Anchor configs are measured as part of the bootstrap, counted, and
// eligible as incumbents: with a zero candidate budget, the known-good
// anchor must come back as best_config (transfer's "refine from the reused
// optimum" mechanism).
TEST(OptimizerTest, AnchorConfigsSeedTheIncumbent) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 205);
  const size_t objective = model->ObjectiveIndices()[0];

  // Find a good config with a normal run, then hand it to a fresh
  // optimizer as an anchor next to a handful of random samples.
  UnicornOptimizer scout(task, FastOptions(40));
  const auto scouted = scout.Minimize(objective);

  OptimizeOptions options = FastOptions(1);
  options.initial_samples = 5;
  options.anchor_configs = {scouted.best_config};
  UnicornOptimizer optimizer(task, options);
  const auto result = optimizer.Minimize(objective);

  // Anchor + 5 random samples + 1 candidate, all counted.
  EXPECT_EQ(result.measurements_used, 1 + options.initial_samples + options.max_iterations);
  // The anchor's value is on the trajectory first and can only be improved.
  EXPECT_EQ(result.best_trajectory.front(),
            task.measure(scouted.best_config)[objective]);
  EXPECT_LE(result.best_value, result.best_trajectory.front() + 1e-12);
}

TEST(OptimizerTest, BestConfigReproducesBestValue) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 202);
  UnicornOptimizer optimizer(task, FastOptions());
  const size_t latency = model->ObjectiveIndices()[0];
  const auto result = optimizer.Minimize(latency);
  // Re-measuring the best config lands near the recorded best value
  // (measurement noise allows slack).
  const auto row = task.measure(result.best_config);
  EXPECT_LT(row[latency], result.best_value * 1.5 + 1.0);
}

TEST(OptimizerTest, MultiObjectiveProducesFront) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 203);
  UnicornOptimizer optimizer(task, FastOptions(40));
  const auto objectives = model->ObjectiveIndices();
  const auto result = optimizer.MinimizeMulti({objectives[0], objectives[1]});
  ASSERT_FALSE(result.evaluated.empty());
  std::vector<std::pair<double, double>> points;
  for (const auto& objs : result.evaluated) {
    ASSERT_EQ(objs.size(), 2u);
    points.push_back({objs[0], objs[1]});
  }
  const auto front = ParetoFront2D(points);
  EXPECT_GE(front.size(), 1u);
  EXPECT_LE(front.size(), points.size());
}

TEST(OptimizerTest, WarmStartOnlyTransferRuns) {
  // initial_samples = 0 with a warm-start table (pure transfer): the loop
  // must still run its full candidate budget on the transferred model.
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 206);
  Rng rng(207);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 60; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable warm = model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  OptimizeOptions options = FastOptions(15);
  options.initial_samples = 0;
  UnicornOptimizer optimizer(task, options);
  const auto result = optimizer.Minimize(model->ObjectiveIndices()[0], &warm);
  EXPECT_EQ(result.measurements_used, options.max_iterations);
  EXPECT_FALSE(result.best_config.empty());
  EXPECT_EQ(result.best_trajectory.size(), options.max_iterations);
}

TEST(OptimizerTest, WarmStartAccepted) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 204);
  // Warm-start table measured separately.
  Rng rng(205);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 60; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable warm = model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  OptimizeOptions options = FastOptions(20);
  options.initial_samples = 5;
  UnicornOptimizer optimizer(task, options);
  const auto result = optimizer.Minimize(model->ObjectiveIndices()[0], &warm);
  EXPECT_EQ(result.measurements_used, options.initial_samples + options.max_iterations);
}

}  // namespace
}  // namespace unicorn
