// The pipelined campaign scheduler must be pure plumbing: RunAsyncGrouped
// with the ready-set pipeline (CampaignOptions::pipeline, the default) is
// bit-identical per policy to the synchronous RunGrouped loop — same graphs,
// same rows in the same order, same CI-test counts — for any refresh-thread
// and engine-thread count, with transient backend failures injected, and
// through the legacy barrier engine too. AbsorbIncremental, the scheduler's
// absorb contract, must match AddRow-then-Refresh on the same rows.
#include <gtest/gtest.h>

#include "eval/harness.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/campaign.h"
#include "unicorn/debugger.h"
#include "unicorn/optimizer.h"
#include "util/rng.h"

namespace unicorn {
namespace {

struct Scenario {
  std::shared_ptr<SystemModel> model;
  PerformanceTask task;
  FaultCuration curation;
};

Scenario MakeScenario(SystemId id, uint64_t seed, size_t samples = 1200) {
  Scenario s;
  SystemSpec spec;
  spec.num_events = 10;
  s.model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  Rng rng(seed);
  s.curation = CurateFaults(*s.model, Tx2(), DefaultWorkload(), samples, &rng, 0.97);
  s.task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), seed + 1);
  return s;
}

DebugOptions FastDebugOptions() {
  DebugOptions options;
  options.initial_samples = 20;
  options.max_iterations = 10;
  options.stall_termination = 20;
  options.repairs_per_iteration = 3;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 16;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 25;
  return options;
}

OptimizeOptions FastOptimizeOptions() {
  OptimizeOptions options;
  options.initial_samples = 12;
  options.max_iterations = 15;
  options.relearn_every = 5;
  options.model = FastDebugOptions().model;
  return options;
}

const Fault* PickFault(const FaultCuration& curation, size_t skip = 0) {
  size_t seen = 0;
  for (const auto& f : curation.faults) {
    if (!f.root_causes.empty()) {
      if (seen == skip) {
        return &f;
      }
      ++seen;
    }
  }
  return nullptr;
}

void ExpectDebugResultsIdentical(const DebugResult& got, const DebugResult& want) {
  EXPECT_EQ(got.fixed, want.fixed);
  EXPECT_EQ(got.measurements_used, want.measurements_used);
  EXPECT_EQ(got.fixed_config, want.fixed_config);
  EXPECT_EQ(got.fixed_measurement, want.fixed_measurement);
  EXPECT_EQ(got.objective_trajectory, want.objective_trajectory);
  EXPECT_EQ(got.predicted_root_causes, want.predicted_root_causes);
  EXPECT_EQ(got.tests_per_iteration, want.tests_per_iteration);
  EXPECT_TRUE(got.final_graph == want.final_graph);
}

void ExpectOptimizeResultsIdentical(const OptimizeResult& got, const OptimizeResult& want) {
  EXPECT_EQ(got.best_config, want.best_config);
  EXPECT_EQ(got.best_value, want.best_value);
  EXPECT_EQ(got.best_trajectory, want.best_trajectory);
  EXPECT_EQ(got.evaluated, want.evaluated);
  EXPECT_EQ(got.measurements_used, want.measurements_used);
}

// The cross-policy campaign the scheduler exists for: two debug policies and
// one optimize policy in three distinct objective groups. Returns the three
// results so runs can be compared field by field.
struct GroupedRun {
  DebugResult debug_a;
  DebugResult debug_b;
  OptimizeResult optimize;
};

GroupedRun RunThreeGroupCampaign(const Scenario& s, bool async, bool pipeline,
                                 int refresh_threads, int engine_threads) {
  const Fault* fault_a = PickFault(s.curation, 0);
  const Fault* fault_b = PickFault(s.curation, 1);
  EXPECT_NE(fault_a, nullptr);
  if (fault_b == nullptr) {
    fault_b = fault_a;
  }
  DebugOptions debug_options = FastDebugOptions();
  debug_options.model.fci.skeleton.num_threads = engine_threads;
  OptimizeOptions optimize_options = FastOptimizeOptions();
  optimize_options.model.fci.skeleton.num_threads = engine_threads;

  CampaignOptions campaign;
  campaign.model = debug_options.model;
  campaign.engine = debug_options.engine;
  campaign.seed = debug_options.seed;
  campaign.refresh_threads = refresh_threads;
  campaign.pipeline = pipeline;

  CampaignRunner runner(s.task, campaign);
  DebugPolicy policy_a(debug_options, fault_a->config, GoalsForFault(s.curation, *fault_a));
  DebugPolicy policy_b(debug_options, fault_b->config, GoalsForFault(s.curation, *fault_b));
  OptimizePolicy policy_o(optimize_options, {s.model->ObjectiveIndices()[0]});
  const std::vector<GroupedPolicy> grouped = {GroupedPolicy{&policy_a, "fault-a"},
                                              GroupedPolicy{&policy_b, "fault-b"},
                                              GroupedPolicy{&policy_o, "minimize"}};
  if (async) {
    runner.RunAsyncGrouped(grouped);
  } else {
    runner.RunGrouped(grouped);
  }
  return GroupedRun{policy_a.result(), policy_b.result(), policy_o.result()};
}

// The headline contract: the pipelined scheduler is bit-identical per policy
// to the synchronous grouped loop at refresh_threads {1,4} × engine threads
// {1,4}. One sync oracle (serial everything) pins all four cells.
TEST(PipelineSchedulerTest, PipelinedMatchesSyncAcrossThreadMatrix) {
  Scenario s = MakeScenario(SystemId::kXception, 310);
  const GroupedRun oracle =
      RunThreeGroupCampaign(s, /*async=*/false, /*pipeline=*/false, 1, 1);

  for (const int refresh_threads : {1, 4}) {
    for (const int engine_threads : {1, 4}) {
      SCOPED_TRACE("refresh_threads=" + std::to_string(refresh_threads) +
                   " engine_threads=" + std::to_string(engine_threads));
      const GroupedRun run = RunThreeGroupCampaign(s, /*async=*/true, /*pipeline=*/true,
                                                   refresh_threads, engine_threads);
      ExpectDebugResultsIdentical(run.debug_a, oracle.debug_a);
      ExpectDebugResultsIdentical(run.debug_b, oracle.debug_b);
      ExpectOptimizeResultsIdentical(run.optimize, oracle.optimize);
    }
  }
}

// The barrier engine (pipeline = false) stays available as the measurable
// baseline and stays bit-identical too.
TEST(PipelineSchedulerTest, BarrierEngineMatchesSync) {
  Scenario s = MakeScenario(SystemId::kXception, 311);
  const GroupedRun oracle =
      RunThreeGroupCampaign(s, /*async=*/false, /*pipeline=*/false, 1, 1);
  const GroupedRun barrier =
      RunThreeGroupCampaign(s, /*async=*/true, /*pipeline=*/false, 4, 1);
  ExpectDebugResultsIdentical(barrier.debug_a, oracle.debug_a);
  ExpectDebugResultsIdentical(barrier.debug_b, oracle.debug_b);
  ExpectOptimizeResultsIdentical(barrier.optimize, oracle.optimize);
}

// Transient backend failures must stay invisible to the reasoning: a
// pipelined campaign over a fleet of simulated devices with a 25% transient
// failure rate reproduces the serial pool-mode oracle row for row, while the
// fleet ledger shows the retries really happened. The async-refresh ledger
// must surface through every policy's pool_stats.
TEST(PipelineSchedulerTest, PipelinedFleetWithTransientFailuresMatchesSync) {
  Scenario s = MakeScenario(SystemId::kXception, 312);
  const GroupedRun oracle =
      RunThreeGroupCampaign(s, /*async=*/false, /*pipeline=*/false, 1, 1);

  const Fault* fault_a = PickFault(s.curation, 0);
  const Fault* fault_b = PickFault(s.curation, 1);
  ASSERT_NE(fault_a, nullptr);
  if (fault_b == nullptr) {
    fault_b = fault_a;
  }
  DebugOptions debug_options = FastDebugOptions();
  OptimizeOptions optimize_options = FastOptimizeOptions();

  CampaignOptions campaign;
  campaign.model = debug_options.model;
  campaign.engine = debug_options.engine;
  campaign.seed = debug_options.seed;
  campaign.refresh_threads = 4;

  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  for (int b = 0; b < 3; ++b) {
    DeviceProfile profile;
    profile.name = "jetson-" + std::to_string(b);
    profile.seed = 700 + static_cast<uint64_t>(b);
    profile.transient_failure_rate = 0.25;
    backends.push_back(
        MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(), 313, std::move(profile)));
  }
  FleetOptions fleet_options;
  fleet_options.max_attempts = 8;
  CampaignRunner runner(
      s.task, campaign, std::make_unique<BackendFleet>(std::move(backends), fleet_options));
  DebugPolicy policy_a(debug_options, fault_a->config, GoalsForFault(s.curation, *fault_a));
  DebugPolicy policy_b(debug_options, fault_b->config, GoalsForFault(s.curation, *fault_b));
  OptimizePolicy policy_o(optimize_options, {s.model->ObjectiveIndices()[0]});
  runner.RunAsyncGrouped({GroupedPolicy{&policy_a, "fault-a"},
                          GroupedPolicy{&policy_b, "fault-b"},
                          GroupedPolicy{&policy_o, "minimize"}});

  ExpectDebugResultsIdentical(policy_a.result(), oracle.debug_a);
  ExpectDebugResultsIdentical(policy_b.result(), oracle.debug_b);
  ExpectOptimizeResultsIdentical(policy_o.result(), oracle.optimize);

  const FleetStats stats = runner.broker().fleet_stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.retries, 0u);

  // Asynchronous-refresh ledger: the refreshes ran through the async path
  // and the overlap gauge was registered (overlap itself is timing-dependent
  // on a loaded host, so only its sanity is asserted).
  const ShardPoolStats pool_stats = runner.pool().stats();
  EXPECT_GE(pool_stats.widest_cross_policy_batch, 1u);
  EXPECT_GE(pool_stats.overlap_seconds, 0.0);
  EXPECT_EQ(policy_a.result().pool_stats.widest_cross_policy_batch,
            pool_stats.widest_cross_policy_batch);
}

// Policies sharing one objective group park behind each other's refreshes
// instead of racing the shard; the campaign must still complete with every
// accepted row in the one shared table (interleaving is completion-order
// dependent, so only liveness and accounting are pinned — see the
// RunAsyncGrouped contract).
TEST(PipelineSchedulerTest, SameGroupPoliciesCompleteOnOneShard) {
  Scenario s = MakeScenario(SystemId::kXception, 314);
  const Fault* fault_a = PickFault(s.curation, 0);
  const Fault* fault_b = PickFault(s.curation, 1);
  ASSERT_NE(fault_a, nullptr);
  if (fault_b == nullptr) {
    fault_b = fault_a;
  }
  const DebugOptions options = FastDebugOptions();
  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.engine = options.engine;
  campaign.seed = options.seed;
  campaign.refresh_threads = 2;

  CampaignRunner runner(s.task, campaign);
  DebugPolicy policy_a(options, fault_a->config, GoalsForFault(s.curation, *fault_a));
  DebugPolicy policy_b(options, fault_b->config, GoalsForFault(s.curation, *fault_b));
  runner.RunAsyncGrouped(
      {GroupedPolicy{&policy_a, "shared"}, GroupedPolicy{&policy_b, "shared"}});

  ASSERT_FALSE(policy_a.result().fixed_config.empty());
  ASSERT_FALSE(policy_b.result().fixed_config.empty());
  EXPECT_EQ(policy_a.result().shard, policy_b.result().shard);
  EXPECT_EQ(runner.pool().shard(policy_a.result().shard).data().NumRows(),
            policy_a.result().measurements_used + policy_b.result().measurements_used);
}

// --- AbsorbIncremental: the scheduler's engine-side contract ---------------

DataTable MeasuredData(SystemId id, size_t rows, uint64_t seed) {
  SystemSpec spec;
  spec.num_events = 5;
  const auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < rows; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  return model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
}

CausalModelOptions SmallModelOptions() {
  CausalModelOptions options;
  options.fci.skeleton.max_cond_size = 2;
  options.fci.skeleton.max_subsets = 16;
  options.fci.max_pds_cond_size = 1;
  options.entropic.latent.restarts = 1;
  options.entropic.latent.iterations = 20;
  return options;
}

// AbsorbIncremental == AddRow-then-Refresh on the same rows: identical
// graphs, CI-test counts, and data fingerprints at every refresh point,
// whether rows arrive one at a time or in batches.
TEST(AbsorbIncrementalTest, MatchesBatchAbsorbAtEveryRefresh) {
  const DataTable all = MeasuredData(SystemId::kX264, 90, 51);
  const CausalModelOptions model_options = SmallModelOptions();

  CausalModelEngine reference(all.Variables(), model_options);
  CausalModelEngine chunked(all.Variables(), model_options);   // batch AbsorbIncremental
  CausalModelEngine row_wise(all.Variables(), model_options);  // one row at a time

  size_t next = 0;
  const size_t chunk = 18;
  uint64_t seed = 70;
  while (next < all.NumRows()) {
    const size_t end = std::min(next + chunk, all.NumRows());
    std::vector<std::vector<double>> batch;
    for (size_t r = next; r < end; ++r) {
      reference.AddRow(all.Row(r));
      row_wise.AbsorbIncremental(all.Row(r));
      batch.push_back(all.Row(r));
    }
    chunked.AbsorbIncremental(batch);
    next = end;

    reference.Refresh(seed);
    chunked.Refresh(seed);
    row_wise.Refresh(seed);
    ++seed;

    EXPECT_EQ(chunked.data_fingerprint(), reference.data_fingerprint());
    EXPECT_EQ(row_wise.data_fingerprint(), reference.data_fingerprint());
    EXPECT_EQ(chunked.model().independence_tests, reference.model().independence_tests);
    EXPECT_EQ(row_wise.model().independence_tests, reference.model().independence_tests);
    EXPECT_TRUE(chunked.model().admg == reference.model().admg);
    EXPECT_TRUE(row_wise.model().admg == reference.model().admg);
    EXPECT_EQ(chunked.stats().tests_evaluated, reference.stats().tests_evaluated);
    EXPECT_EQ(row_wise.stats().tests_evaluated, reference.stats().tests_evaluated);
  }
}

// SyncAppendedRows is idempotent and safe before any refresh: rows absorbed
// into a never-refreshed engine are plain appends, and a redundant sync does
// not disturb the subsequent refresh.
TEST(AbsorbIncrementalTest, SyncBeforeFirstRefreshAndRepeatedSyncAreNoOps) {
  const DataTable all = MeasuredData(SystemId::kX264, 40, 52);
  const CausalModelOptions model_options = SmallModelOptions();

  CausalModelEngine reference(all.Variables(), model_options);
  CausalModelEngine synced(all.Variables(), model_options);
  for (size_t r = 0; r < all.NumRows(); ++r) {
    reference.AddRow(all.Row(r));
    synced.AbsorbIncremental(all.Row(r));
    synced.SyncAppendedRows();  // redundant: AbsorbIncremental already synced
  }
  reference.Refresh(7);
  synced.Refresh(7);
  EXPECT_TRUE(synced.model().admg == reference.model().admg);
  EXPECT_EQ(synced.model().independence_tests, reference.model().independence_tests);
  EXPECT_EQ(synced.data_fingerprint(), reference.data_fingerprint());
}

}  // namespace
}  // namespace unicorn
