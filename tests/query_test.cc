#include "unicorn/query.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace unicorn {
namespace {

DataTable QueryData(Rng* rng) {
  std::vector<Variable> vars = {
      {"buffer_size", VarType::kDiscrete, VarRole::kOption, {6000, 8000, 20000}},
      {"latency", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable t(vars);
  for (int i = 0; i < 600; ++i) {
    const double buf =
        std::vector<double>{6000, 8000, 20000}[rng->UniformInt(uint64_t{3})];
    t.AddRow({buf, buf / 400.0 + rng->Gaussian(0, 0.5)});
  }
  return t;
}

TEST(QueryParseTest, ProbabilityQuery) {
  Rng rng(1);
  const DataTable t = QueryData(&rng);
  const auto q = ParseQuery("P(latency <= 30 | do(buffer_size=6000))", t);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->objective, 1u);
  EXPECT_EQ(q->option, 0u);
  EXPECT_EQ(q->option_value, 6000.0);
  ASSERT_TRUE(q->threshold.has_value());
  EXPECT_EQ(*q->threshold, 30.0);
}

TEST(QueryParseTest, ExpectationQuery) {
  Rng rng(2);
  const DataTable t = QueryData(&rng);
  const auto q = ParseQuery("E(latency | do(buffer_size=20000))", t);
  ASSERT_TRUE(q.has_value());
  EXPECT_FALSE(q->threshold.has_value());
}

TEST(QueryParseTest, RejectsUnknownVariable) {
  Rng rng(3);
  const DataTable t = QueryData(&rng);
  EXPECT_FALSE(ParseQuery("E(nonexistent | do(buffer_size=6000))", t).has_value());
  EXPECT_FALSE(ParseQuery("E(latency | do(nope=6000))", t).has_value());
}

TEST(QueryParseTest, RejectsMalformed) {
  Rng rng(4);
  const DataTable t = QueryData(&rng);
  EXPECT_FALSE(ParseQuery("", t).has_value());
  EXPECT_FALSE(ParseQuery("latency <= 30", t).has_value());
  EXPECT_FALSE(ParseQuery("P(latency | do(buffer_size=6000))", t).has_value());
  EXPECT_FALSE(ParseQuery("E(latency | buffer_size=6000)", t).has_value());
  EXPECT_FALSE(ParseQuery("P(latency <= xyz | do(buffer_size=6000))", t).has_value());
}

TEST(QueryEstimateTest, ProbabilityAnswer) {
  Rng rng(5);
  const DataTable t = QueryData(&rng);
  MixedGraph g(2);
  g.AddDirected(0, 1);
  const CausalEffectEstimator est(g, t);
  const auto q = ParseQuery("P(latency <= 30 | do(buffer_size=6000))", t);
  ASSERT_TRUE(q.has_value());
  const auto answer = EstimateQuery(est, *q);
  EXPECT_TRUE(answer.is_probability);
  // latency | buf=6000 ~ 15 << 30: probability near 1.
  EXPECT_GT(answer.value, 0.9);
}

TEST(QueryEstimateTest, ExpectationAnswerTracksIntervention) {
  Rng rng(6);
  const DataTable t = QueryData(&rng);
  MixedGraph g(2);
  g.AddDirected(0, 1);
  const CausalEffectEstimator est(g, t);
  const auto low = EstimateQuery(est, *ParseQuery("E(latency | do(buffer_size=6000))", t));
  const auto high = EstimateQuery(est, *ParseQuery("E(latency | do(buffer_size=20000))", t));
  EXPECT_FALSE(low.is_probability);
  EXPECT_LT(low.value, high.value);
  EXPECT_NEAR(low.value, 15.0, 1.5);
  EXPECT_NEAR(high.value, 50.0, 1.5);
}

}  // namespace
}  // namespace unicorn
