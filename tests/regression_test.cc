#include "stats/regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/correlation.h"
#include "util/rng.h"

namespace unicorn {
namespace {

DataTable MakeTable(size_t num_features, size_t rows, Rng* rng) {
  std::vector<Variable> vars;
  for (size_t i = 0; i < num_features; ++i) {
    vars.push_back({"x" + std::to_string(i), VarType::kContinuous, VarRole::kOption, {0, 1}});
  }
  vars.push_back({"y", VarType::kContinuous, VarRole::kObjective, {}});
  DataTable t(vars);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<double> row(num_features + 1, 0.0);
    for (size_t i = 0; i < num_features; ++i) {
      row[i] = rng->Uniform();
    }
    t.AddRow(row);
  }
  return t;
}

TEST(OlsTest, RecoversLinearCoefficients) {
  Rng rng(1);
  DataTable t = MakeTable(2, 500, &rng);
  const size_t y = 2;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    t.Set(r, y, 3.0 + 2.0 * t.At(r, 0) - 5.0 * t.At(r, 1) + rng.Gaussian(0, 0.01));
  }
  const InfluenceModel m = FitOls(t, {{{0}}, {{1}}}, y);
  ASSERT_EQ(m.coefficients.size(), 3u);
  EXPECT_NEAR(m.coefficients[0], 3.0, 0.05);
  EXPECT_NEAR(m.coefficients[1], 2.0, 0.05);
  EXPECT_NEAR(m.coefficients[2], -5.0, 0.05);
  EXPECT_GT(m.train_r2, 0.99);
}

TEST(OlsTest, InterceptOnlyModelPredictsMean) {
  Rng rng(2);
  DataTable t = MakeTable(1, 100, &rng);
  for (size_t r = 0; r < t.NumRows(); ++r) {
    t.Set(r, 1, 7.0);
  }
  const InfluenceModel m = FitOls(t, {}, 1);
  EXPECT_NEAR(m.Predict({0.3, 0.0}), 7.0, 1e-9);
}

TEST(OlsTest, InteractionTermColumn) {
  Rng rng(3);
  DataTable t = MakeTable(2, 800, &rng);
  for (size_t r = 0; r < t.NumRows(); ++r) {
    t.Set(r, 2, 4.0 * t.At(r, 0) * t.At(r, 1) + rng.Gaussian(0, 0.01));
  }
  const InfluenceModel m = FitOls(t, {{{0, 1}}}, 2);
  EXPECT_NEAR(m.coefficients[1], 4.0, 0.05);
}

TEST(StepwiseTest, SelectsTrueTerms) {
  Rng rng(4);
  DataTable t = MakeTable(5, 600, &rng);
  const size_t y = 5;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    t.Set(r, y,
          1.0 + 3.0 * t.At(r, 0) + 2.0 * t.At(r, 1) * t.At(r, 2) + rng.Gaussian(0, 0.02));
  }
  const InfluenceModel m = FitStepwiseRegression(t, {0, 1, 2, 3, 4}, y);
  // The true singleton and the true interaction must be selected.
  bool has_x0 = false;
  bool has_x1x2 = false;
  for (const auto& term : m.terms) {
    if (term.vars == std::vector<size_t>{0}) {
      has_x0 = true;
    }
    if (term.vars == std::vector<size_t>{1, 2}) {
      has_x1x2 = true;
    }
  }
  EXPECT_TRUE(has_x0);
  EXPECT_TRUE(has_x1x2);
  EXPECT_GT(m.train_r2, 0.98);
}

TEST(StepwiseTest, PrunesIrrelevantFeatures) {
  Rng rng(5);
  DataTable t = MakeTable(6, 500, &rng);
  const size_t y = 6;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    t.Set(r, y, 2.0 * t.At(r, 0) + rng.Gaussian(0, 0.05));
  }
  const InfluenceModel m = FitStepwiseRegression(t, {0, 1, 2, 3, 4, 5}, y);
  // BIC keeps the model small: at most a couple of spurious terms.
  EXPECT_LE(m.terms.size(), 3u);
}

TEST(StepwiseTest, MaxTermsRespected) {
  Rng rng(6);
  DataTable t = MakeTable(8, 400, &rng);
  const size_t y = 8;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    double acc = 0.0;
    for (size_t f = 0; f < 8; ++f) {
      acc += static_cast<double>(f + 1) * t.At(r, f);
    }
    t.Set(r, y, acc + rng.Gaussian(0, 0.01));
  }
  StepwiseOptions options;
  options.max_terms = 4;
  const InfluenceModel m = FitStepwiseRegression(t, {0, 1, 2, 3, 4, 5, 6, 7}, y, options);
  EXPECT_LE(m.terms.size(), 4u);
}

TEST(StepwiseTest, PredictAllMatchesLoop) {
  Rng rng(7);
  DataTable t = MakeTable(3, 50, &rng);
  for (size_t r = 0; r < t.NumRows(); ++r) {
    t.Set(r, 3, t.At(r, 0) + rng.Gaussian(0, 0.1));
  }
  const InfluenceModel m = FitStepwiseRegression(t, {0, 1, 2}, 3);
  const auto preds = m.PredictAll(t);
  ASSERT_EQ(preds.size(), t.NumRows());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    EXPECT_NEAR(preds[r], m.Predict(t.Row(r)), 1e-12);
  }
}

TEST(StepwiseTest, TermNameReadable) {
  Rng rng(8);
  const DataTable t = MakeTable(2, 10, &rng);
  RegressionTerm term{{0, 1}};
  EXPECT_EQ(term.Name(t), "x0 x x1");
}

TEST(StepwiseTest, DegenerateTargetYieldsInterceptModel) {
  Rng rng(9);
  DataTable t = MakeTable(3, 100, &rng);
  for (size_t r = 0; r < t.NumRows(); ++r) {
    t.Set(r, 3, 5.5);
  }
  const InfluenceModel m = FitStepwiseRegression(t, {0, 1, 2}, 3);
  EXPECT_TRUE(m.terms.empty());
  EXPECT_NEAR(m.Predict({0.1, 0.9, 0.5, 0.0}), 5.5, 1e-6);
}

// Property sweep: stepwise regression train error decreases (weakly) with
// more allowed terms.
class StepwiseBudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(StepwiseBudgetSweep, MoreTermsNeverHurtTrainFit) {
  Rng rng(10);
  DataTable t = MakeTable(6, 300, &rng);
  const size_t y = 6;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    t.Set(r, y,
          2 * t.At(r, 0) - 3 * t.At(r, 1) + 1.5 * t.At(r, 2) * t.At(r, 3) +
              rng.Gaussian(0, 0.05));
  }
  StepwiseOptions small;
  small.max_terms = GetParam();
  StepwiseOptions large;
  large.max_terms = GetParam() + 3;
  const auto m_small = FitStepwiseRegression(t, {0, 1, 2, 3, 4, 5}, y, small);
  const auto m_large = FitStepwiseRegression(t, {0, 1, 2, 3, 4, 5}, y, large);
  EXPECT_LE(m_large.train_rmse, m_small.train_rmse + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, StepwiseBudgetSweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace unicorn
