#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace unicorn {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    acc += rng.Uniform();
  }
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{7});
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(15);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double mean = 0.0;
  double var = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    mean += g;
    var += g * g;
  }
  mean /= n;
  var = var / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(19);
  double mean = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    mean += rng.Gaussian(5.0, 0.1);
  }
  EXPECT_NEAR(mean / n, 5.0, 0.01);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalProportional) {
  Rng rng(25);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(27);
  std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
  }
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(29);
  std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(33);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) {
    v[static_cast<size_t>(i)] = i;
  }
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(35);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += parent.NextU64() == child.NextU64() ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace unicorn
