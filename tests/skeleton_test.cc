#include "causal/skeleton.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace unicorn {
namespace {

TEST(SepsetTest, SetGetSymmetric) {
  SepsetMap m;
  m.Set(3, 1, {5, 2});
  const auto* s = m.Get(1, 3);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s, (std::vector<size_t>{2, 5}));  // stored sorted
  EXPECT_TRUE(m.Contains(1, 3, 5));
  EXPECT_FALSE(m.Contains(1, 3, 7));
  EXPECT_EQ(m.Get(0, 1), nullptr);
}

TEST(SubsetsTest, SizeZero) {
  const auto subs = Subsets({1, 2, 3}, 0, 10);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_TRUE(subs[0].empty());
}

TEST(SubsetsTest, ChooseTwoOfThree) {
  const auto subs = Subsets({1, 2, 3}, 2, 10);
  EXPECT_EQ(subs.size(), 3u);
}

TEST(SubsetsTest, TooLargeEmpty) { EXPECT_TRUE(Subsets({1, 2}, 3, 10).empty()); }

TEST(SubsetsTest, CapRespected) {
  const auto subs = Subsets({1, 2, 3, 4, 5, 6}, 3, 5);
  EXPECT_EQ(subs.size(), 5u);
}

// A synthetic linear SCM: o0 -> e0 -> y, o1 -> e0, o2 independent.
DataTable ChainData(size_t n, Rng* rng) {
  std::vector<Variable> vars = {
      {"o0", VarType::kContinuous, VarRole::kOption, {0, 1}},
      {"o1", VarType::kContinuous, VarRole::kOption, {0, 1}},
      {"o2", VarType::kContinuous, VarRole::kOption, {0, 1}},
      {"e0", VarType::kContinuous, VarRole::kEvent, {}},
      {"y", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable t(vars);
  for (size_t i = 0; i < n; ++i) {
    const double o0 = rng->Uniform();
    const double o1 = rng->Uniform();
    const double o2 = rng->Uniform();
    // Realistic noise: near-deterministic links leak through rank-based
    // partial correlations (monotone transforms are only approximately
    // partialled out).
    const double e0 = 2.0 * o0 - 1.5 * o1 + rng->Gaussian(0, 0.25);
    const double y = 3.0 * e0 + rng->Gaussian(0, 0.25);
    t.AddRow({o0, o1, o2, e0, y});
  }
  return t;
}

TEST(SkeletonTest, RecoversChainAdjacency) {
  Rng rng(11);
  const DataTable data = ChainData(1200, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const SkeletonResult result = LearnSkeleton(test, constraints, data.NumVars());
  const MixedGraph& g = result.graph;
  // True adjacencies present.
  EXPECT_TRUE(g.HasEdge(0, 3));  // o0 - e0
  EXPECT_TRUE(g.HasEdge(1, 3));  // o1 - e0
  EXPECT_TRUE(g.HasEdge(3, 4));  // e0 - y
  // Chain link o0 - y removed given e0.
  EXPECT_FALSE(g.HasEdge(0, 4));
  // Independent option isolated.
  EXPECT_FALSE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(2, 4));
}

TEST(SkeletonTest, OptionOptionEdgesForbidden) {
  Rng rng(12);
  const DataTable data = ChainData(500, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const SkeletonResult result = LearnSkeleton(test, constraints, data.NumVars());
  EXPECT_FALSE(result.graph.HasEdge(0, 1));
  EXPECT_FALSE(result.graph.HasEdge(0, 2));
  EXPECT_FALSE(result.graph.HasEdge(1, 2));
}

TEST(SkeletonTest, SepsetRecordedForRemovedEdge) {
  Rng rng(13);
  const DataTable data = ChainData(1200, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const SkeletonResult result = LearnSkeleton(test, constraints, data.NumVars());
  // o0 and y are separated by e0.
  const auto* sepset = result.sepsets.Get(0, 4);
  ASSERT_NE(sepset, nullptr);
  EXPECT_TRUE(result.sepsets.Contains(0, 4, 3));
}

TEST(SkeletonTest, TestsCounted) {
  Rng rng(14);
  const DataTable data = ChainData(300, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const SkeletonResult result = LearnSkeleton(test, constraints, data.NumVars());
  EXPECT_GT(result.tests_performed, 0);
}

TEST(SkeletonTest, AllEdgesCircleMarked) {
  Rng rng(15);
  const DataTable data = ChainData(400, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  const SkeletonResult result = LearnSkeleton(test, constraints, data.NumVars());
  const MixedGraph& g = result.graph;
  for (size_t a = 0; a < g.NumNodes(); ++a) {
    for (size_t b = a + 1; b < g.NumNodes(); ++b) {
      if (g.HasEdge(a, b)) {
        EXPECT_TRUE(g.HasCircleAt(a, b));
        EXPECT_TRUE(g.HasCircleAt(b, a));
      }
    }
  }
}

// Property sweep: tighter alpha never yields more edges.
class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, EdgeCountMonotoneInAlpha) {
  Rng rng(16);
  const DataTable data = ChainData(600, &rng);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  SkeletonOptions tight;
  tight.alpha = GetParam();
  SkeletonOptions loose;
  loose.alpha = GetParam() * 10.0;
  const auto g_tight = LearnSkeleton(test, constraints, data.NumVars(), tight);
  const auto g_loose = LearnSkeleton(test, constraints, data.NumVars(), loose);
  EXPECT_LE(g_tight.graph.NumEdges(), g_loose.graph.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep, ::testing::Values(0.001, 0.005, 0.01));

}  // namespace
}  // namespace unicorn
