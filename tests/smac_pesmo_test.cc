#include <gtest/gtest.h>

#include "baselines/pesmo.h"
#include "baselines/smac.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "sysmodel/systems.h"

namespace unicorn {
namespace {

PerformanceTask MakeTask(std::shared_ptr<SystemModel>* model_out, uint64_t seed) {
  SystemSpec spec;
  spec.num_events = 6;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kX264, spec));
  *model_out = model;
  return MakeSimulatedTask(model, Tx2(), DefaultWorkload(), seed);
}

TEST(SmacTest, TrajectoryMonotone) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 400);
  SmacOptions options;
  options.initial_samples = 15;
  options.max_iterations = 25;
  options.forest.num_trees = 10;
  const auto result = SmacMinimize(task, model->ObjectiveIndices()[0], options);
  for (size_t i = 1; i < result.best_trajectory.size(); ++i) {
    EXPECT_LE(result.best_trajectory[i], result.best_trajectory[i - 1] + 1e-12);
  }
  EXPECT_EQ(result.measurements_used, options.initial_samples + options.max_iterations);
}

TEST(SmacTest, ImprovesOverRandomInit) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 401);
  SmacOptions options;
  options.initial_samples = 15;
  options.max_iterations = 40;
  options.forest.num_trees = 10;
  const auto result = SmacMinimize(task, model->ObjectiveIndices()[0], options);
  EXPECT_LE(result.best_value, result.best_trajectory[options.initial_samples - 1]);
}

TEST(SmacTest, WarmStartEvaluatedFirst) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 402);
  Rng rng(403);
  const auto warm = model->SampleConfig(&rng);
  SmacOptions options;
  options.initial_samples = 5;
  options.max_iterations = 5;
  options.forest.num_trees = 5;
  const auto result = SmacMinimize(task, model->ObjectiveIndices()[0], options, &warm);
  EXPECT_EQ(result.measurements_used, 1 + options.initial_samples + options.max_iterations);
}

TEST(PesmoTest, EvaluatesBudget) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 404);
  PesmoOptions options;
  options.initial_samples = 15;
  options.max_iterations = 20;
  options.forest.num_trees = 8;
  const auto objectives = model->ObjectiveIndices();
  const auto result = PesmoMinimize(task, {objectives[0], objectives[1]}, options);
  EXPECT_EQ(result.measurements_used, options.initial_samples + options.max_iterations);
  EXPECT_EQ(result.evaluated.size(), result.configs.size());
}

TEST(PesmoTest, FrontNonTrivial) {
  std::shared_ptr<SystemModel> model;
  const PerformanceTask task = MakeTask(&model, 405);
  PesmoOptions options;
  options.initial_samples = 20;
  options.max_iterations = 30;
  options.forest.num_trees = 8;
  const auto objectives = model->ObjectiveIndices();
  const auto result = PesmoMinimize(task, {objectives[0], objectives[1]}, options);
  std::vector<std::pair<double, double>> points;
  for (const auto& objs : result.evaluated) {
    points.push_back({objs[0], objs[1]});
  }
  const auto front = ParetoFront2D(points);
  EXPECT_GE(front.size(), 1u);
}

}  // namespace
}  // namespace unicorn
