#include "stats/special.h"

#include <cmath>

#include <gtest/gtest.h>

namespace unicorn {
namespace {

TEST(SpecialTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501, 1e-6);
}

TEST(SpecialTest, NormalCdfMonotone) {
  double prev = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.25) {
    const double c = NormalCdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(SpecialTest, NormalTwoSidedPValue) {
  EXPECT_NEAR(NormalTwoSidedPValue(0.0), 1.0, 1e-12);
  EXPECT_NEAR(NormalTwoSidedPValue(1.959963985), 0.05, 1e-6);
  EXPECT_NEAR(NormalTwoSidedPValue(-1.959963985), 0.05, 1e-6);
}

TEST(SpecialTest, RegularizedGammaBoundaries) {
  EXPECT_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 1e9), 1.0, 1e-9);
}

TEST(SpecialTest, RegularizedGammaExponentialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-9);
  }
}

TEST(SpecialTest, ChiSquareSurvivalKnownValues) {
  // Chi-square with 1 dof: Pr[X >= 3.841] ~= 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841458821, 1.0), 0.05, 1e-5);
  // 2 dof: survival is exp(-x/2).
  EXPECT_NEAR(ChiSquareSurvival(4.0, 2.0), std::exp(-2.0), 1e-9);
  // 5 dof at 11.070 ~ 0.05.
  EXPECT_NEAR(ChiSquareSurvival(11.0705, 5.0), 0.05, 1e-4);
}

TEST(SpecialTest, ChiSquareSurvivalEdges) {
  EXPECT_EQ(ChiSquareSurvival(-1.0, 3.0), 1.0);
  EXPECT_EQ(ChiSquareSurvival(5.0, 0.0), 1.0);
}

TEST(SpecialTest, RegularizedBetaBoundaries) {
  EXPECT_EQ(RegularizedBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_EQ(RegularizedBeta(1.0, 2.0, 3.0), 1.0);
}

TEST(SpecialTest, RegularizedBetaSymmetry) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.1, 0.3, 0.5, 0.7}) {
    EXPECT_NEAR(RegularizedBeta(x, 2.0, 5.0), 1.0 - RegularizedBeta(1.0 - x, 5.0, 2.0), 1e-9);
  }
}

TEST(SpecialTest, RegularizedBetaUniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedBeta(x, 1.0, 1.0), x, 1e-9);
  }
}

TEST(SpecialTest, StudentTKnownQuantile) {
  // t with 10 dof: |t| = 2.228 gives p ~= 0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(2.228138852, 10.0), 0.05, 1e-4);
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10.0), 1.0, 1e-12);
}

TEST(SpecialTest, StudentTLargeDofApproachesNormal) {
  const double p_t = StudentTTwoSidedPValue(1.96, 100000.0);
  const double p_n = NormalTwoSidedPValue(1.96);
  EXPECT_NEAR(p_t, p_n, 1e-4);
}

}  // namespace
}  // namespace unicorn
