#include "sysmodel/system_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "sysmodel/systems.h"

namespace unicorn {
namespace {

SystemModel SmallSystem() {
  SystemSpec spec;
  spec.num_events = 8;
  return BuildSystem(SystemId::kX264, spec);
}

TEST(SystemModelTest, VariableLayout) {
  const SystemModel m = SmallSystem();
  // x264: 22 kernel + 4 hardware + 6 software options.
  EXPECT_EQ(m.OptionIndices().size(), 32u);
  EXPECT_EQ(m.EventIndices().size(), 8u);
  EXPECT_EQ(m.ObjectiveIndices().size(), 3u);  // latency, energy, heat
  EXPECT_EQ(m.NumVars(), 32u + 8u + 3u);
}

TEST(SystemModelTest, SampleConfigWithinDomains) {
  const SystemModel m = SmallSystem();
  Rng rng(1);
  const auto options = m.OptionIndices();
  for (int trial = 0; trial < 50; ++trial) {
    const auto config = m.SampleConfig(&rng);
    ASSERT_EQ(config.size(), options.size());
    for (size_t i = 0; i < options.size(); ++i) {
      const Variable& var = m.variables()[options[i]];
      EXPECT_GE(config[i], var.domain.front());
      EXPECT_LE(config[i], var.domain.back());
      if (var.type != VarType::kContinuous) {
        EXPECT_NE(std::find(var.domain.begin(), var.domain.end(), config[i]),
                  var.domain.end());
      }
    }
  }
}

TEST(SystemModelTest, MeasurementDeterministicGivenRngState) {
  const SystemModel m = SmallSystem();
  Rng rng_config(2);
  const auto config = m.SampleConfig(&rng_config);
  Rng a(3);
  Rng b(3);
  const auto ma = m.Measure(config, Tx2(), DefaultWorkload(), &a);
  const auto mb = m.Measure(config, Tx2(), DefaultWorkload(), &b);
  EXPECT_EQ(ma, mb);
}

TEST(SystemModelTest, MeasurementEchoesConfig) {
  const SystemModel m = SmallSystem();
  Rng rng(4);
  const auto config = m.SampleConfig(&rng);
  const auto row = m.Measure(config, Tx2(), DefaultWorkload(), &rng);
  const auto options = m.OptionIndices();
  for (size_t i = 0; i < options.size(); ++i) {
    EXPECT_EQ(row[options[i]], config[i]);
  }
}

TEST(SystemModelTest, ObjectivesPositive) {
  const SystemModel m = SmallSystem();
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto config = m.SampleConfig(&rng);
    const auto row = m.Measure(config, Xavier(), DefaultWorkload(), &rng);
    for (size_t obj : m.ObjectiveIndices()) {
      EXPECT_GT(row[obj], 0.0) << m.variables()[obj].name;
    }
  }
}

TEST(SystemModelTest, NoiselessIsNoiseFree) {
  const SystemModel m = SmallSystem();
  Rng rng(6);
  const auto config = m.SampleConfig(&rng);
  const auto a = m.MeasureNoiseless(config, Tx2(), DefaultWorkload());
  const auto b = m.MeasureNoiseless(config, Tx2(), DefaultWorkload());
  EXPECT_EQ(a, b);
}

TEST(SystemModelTest, FasterEnvironmentLowersLatency) {
  const SystemModel m = SmallSystem();
  Rng rng(7);
  const auto latency = m.ObjectiveIndices()[0];
  double tx1_total = 0.0;
  double xavier_total = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto config = m.SampleConfig(&rng);
    tx1_total += m.MeasureNoiseless(config, Tx1(), DefaultWorkload())[latency];
    xavier_total += m.MeasureNoiseless(config, Xavier(), DefaultWorkload())[latency];
  }
  EXPECT_LT(xavier_total, tx1_total);
}

TEST(SystemModelTest, LargerWorkloadRaisesObjectives) {
  const SystemModel m = SmallSystem();
  Rng rng(8);
  const auto latency = m.ObjectiveIndices()[0];
  const auto config = m.SampleConfig(&rng);
  const double small = m.MeasureNoiseless(config, Tx2(), ImageWorkload(5))[latency];
  const double large = m.MeasureNoiseless(config, Tx2(), ImageWorkload(50))[latency];
  EXPECT_GT(large, small * 2.0);
}

TEST(SystemModelTest, GroundTruthGraphIsDagOverOptionsEventsObjectives) {
  const SystemModel m = SmallSystem();
  const MixedGraph g = m.GroundTruthGraph();
  EXPECT_FALSE(g.HasDirectedCycle());
  // Options have no parents.
  for (size_t opt : m.OptionIndices()) {
    EXPECT_TRUE(g.Parents(opt).empty());
  }
  // Objectives have no children.
  for (size_t obj : m.ObjectiveIndices()) {
    EXPECT_TRUE(g.Children(obj).empty());
  }
}

TEST(SystemModelTest, GroundTruthGraphSparse) {
  const SystemModel m = SmallSystem();
  const MixedGraph g = m.GroundTruthGraph();
  // Paper Table 3 reports average degrees of 1.6-3.6 on learned graphs; the
  // ground truth here stays in the same sparse regime.
  EXPECT_LT(g.AverageDegree(), 8.0);
  EXPECT_GT(g.NumEdges(), 10u);
}

TEST(SystemModelTest, FaultRulePenaltyRaisesObjective) {
  const SystemModel m = SmallSystem();
  Rng rng(9);
  // Find a config triggering some rule by rejection sampling.
  std::vector<double> faulty;
  for (int trial = 0; trial < 20000 && faulty.empty(); ++trial) {
    auto config = m.SampleConfig(&rng);
    if (!m.ActiveFaultRules(config).empty()) {
      faulty = config;
    }
  }
  ASSERT_FALSE(faulty.empty()) << "no fault rule triggered in 20k samples";
  const auto rules = m.ActiveFaultRules(faulty);
  const size_t objective = m.fault_rules()[rules[0]].objective;
  const double with_fault = m.MeasureNoiseless(faulty, Tx2(), DefaultWorkload())[objective];
  // Repair: move every root-cause option far from its faulty value.
  const auto causes = m.TrueRootCauses(faulty, objective);
  ASSERT_FALSE(causes.empty());
  EXPECT_GT(with_fault, 0.0);
}

TEST(SystemModelTest, TrueRootCausesMatchRuleConditions) {
  const SystemModel m = SmallSystem();
  Rng rng(10);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto config = m.SampleConfig(&rng);
    const auto rules = m.ActiveFaultRules(config);
    if (rules.empty()) {
      continue;
    }
    const auto& rule = m.fault_rules()[rules[0]];
    const auto causes = m.TrueRootCauses(config, rule.objective);
    for (const auto& cond : rule.conditions) {
      EXPECT_NE(std::find(causes.begin(), causes.end(), cond.var), causes.end());
    }
    return;
  }
  GTEST_SKIP() << "no active rule found";
}

TEST(SystemModelTest, TrueAceNonNegative) {
  const SystemModel m = SmallSystem();
  Rng rng(11);
  const auto latency = m.ObjectiveIndices()[0];
  const auto options = m.OptionIndices();
  const double ace = m.TrueAce(latency, options[5], Tx2(), DefaultWorkload(), &rng, 10);
  EXPECT_GE(ace, 0.0);
}

TEST(SystemModelTest, NormalizeClampsToUnit) {
  const SystemModel m = SmallSystem();
  const auto options = m.OptionIndices();
  const Variable& var = m.variables()[options[0]];
  EXPECT_EQ(m.Normalize(options[0], var.domain.front()), 0.0);
  EXPECT_EQ(m.Normalize(options[0], var.domain.back()), 1.0);
  EXPECT_EQ(m.Normalize(options[0], var.domain.back() + 1000.0), 1.0);
}

TEST(SystemModelTest, MeasureManyBuildsTable) {
  const SystemModel m = SmallSystem();
  Rng rng(12);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 5; ++i) {
    configs.push_back(m.SampleConfig(&rng));
  }
  const DataTable t = m.MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  EXPECT_EQ(t.NumRows(), 5u);
  EXPECT_EQ(t.NumVars(), m.NumVars());
}

}  // namespace
}  // namespace unicorn
