#include "sysmodel/systems.h"

#include <gtest/gtest.h>

namespace unicorn {
namespace {

TEST(SystemsTest, OptionCountsMatchPaper) {
  // Paper Table 1 / Table 3 option counts per system.
  EXPECT_EQ(BuildSystem(SystemId::kDeepstream).OptionIndices().size(), 54u);  // 53 + cuda_static
  EXPECT_EQ(BuildSystem(SystemId::kXception).OptionIndices().size(), 28u);
  EXPECT_EQ(BuildSystem(SystemId::kBert).OptionIndices().size(), 28u);
  EXPECT_EQ(BuildSystem(SystemId::kDeepspeech).OptionIndices().size(), 28u);
  EXPECT_EQ(BuildSystem(SystemId::kX264).OptionIndices().size(), 32u);
  EXPECT_EQ(BuildSystem(SystemId::kSqlite).OptionIndices().size(), 34u);
}

TEST(SystemsTest, SqliteExtendedReaches242Options) {
  SystemSpec spec;
  spec.extended_options = true;
  EXPECT_EQ(BuildSystem(SystemId::kSqlite, spec).OptionIndices().size(), 242u);
}

TEST(SystemsTest, EventCountConfigurable) {
  SystemSpec spec;
  spec.num_events = 288;
  const SystemModel m = BuildSystem(SystemId::kDeepstream, spec);
  EXPECT_EQ(m.EventIndices().size(), 288u);
}

TEST(SystemsTest, DefaultNineteenEventsNamedFromPaper) {
  const SystemModel m = BuildSystem(SystemId::kXception);
  const auto events = m.EventIndices();
  ASSERT_EQ(events.size(), 19u);
  DataTable t(m.variables());
  EXPECT_TRUE(t.IndexOf("cache_misses").has_value());
  EXPECT_TRUE(t.IndexOf("context_switches").has_value());
  EXPECT_TRUE(t.IndexOf("branch_misses").has_value());
  EXPECT_TRUE(t.IndexOf("cycles").has_value());
}

TEST(SystemsTest, HeatObjectiveOptional) {
  SystemSpec spec;
  spec.include_heat = false;
  const SystemModel m = BuildSystem(SystemId::kBert, spec);
  EXPECT_EQ(m.ObjectiveIndices().size(), 2u);
}

TEST(SystemsTest, DeepstreamHasCudaStaticCaseStudyRule) {
  const SystemModel m = BuildSystem(SystemId::kDeepstream);
  bool found = false;
  for (const auto& rule : m.fault_rules()) {
    if (rule.name == "cuda_static_misconfig") {
      found = true;
      EXPECT_EQ(rule.conditions.size(), 5u);
      EXPECT_NEAR(rule.penalty, 7.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SystemsTest, EnvironmentsDistinct) {
  EXPECT_NE(Tx1().seed, Tx2().seed);
  EXPECT_NE(Tx2().seed, Xavier().seed);
  EXPECT_GT(Xavier().speed, Tx2().speed);
  EXPECT_GT(Tx2().speed, Tx1().speed);
}

TEST(SystemsTest, SameStructureAcrossEnvironments) {
  // The ground-truth causal structure is environment-independent: the graph
  // comes from the mechanisms, not from the environment scales.
  const SystemModel m = BuildSystem(SystemId::kX264);
  const MixedGraph g = m.GroundTruthGraph();
  (void)g;  // structure is a function of the model only — compiles the claim
  Rng rng(1);
  const auto config = m.SampleConfig(&rng);
  const auto row_tx2 = m.MeasureNoiseless(config, Tx2(), DefaultWorkload());
  const auto row_xav = m.MeasureNoiseless(config, Xavier(), DefaultWorkload());
  // Same config, different environments: values differ but stay finite.
  EXPECT_NE(row_tx2, row_xav);
}

TEST(SystemsTest, WorkloadScaleLinear) {
  EXPECT_DOUBLE_EQ(ImageWorkload(5).scale, 1.0);
  EXPECT_DOUBLE_EQ(ImageWorkload(50).scale, 10.0);
}

TEST(SystemsTest, SystemNames) {
  EXPECT_STREQ(SystemName(SystemId::kDeepstream), "deepstream");
  EXPECT_STREQ(SystemName(SystemId::kSqlite), "sqlite");
}

TEST(SystemsTest, FaultRatesInLowPercentRange) {
  // Fault rules should trigger for a small but non-negligible fraction of
  // random configurations (the paper labels the >= 99th percentile tail).
  const SystemModel m = BuildSystem(SystemId::kXception);
  Rng rng(2);
  int triggered = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (!m.ActiveFaultRules(m.SampleConfig(&rng)).empty()) {
      ++triggered;
    }
  }
  const double rate = static_cast<double>(triggered) / n;
  EXPECT_GT(rate, 0.001);
  EXPECT_LT(rate, 0.30);
}

}  // namespace
}  // namespace unicorn
