#include "stats/table.h"

#include <gtest/gtest.h>

namespace unicorn {
namespace {

std::vector<Variable> MakeVars() {
  Variable opt{"opt", VarType::kDiscrete, VarRole::kOption, {0, 1, 2}};
  Variable ev{"event", VarType::kContinuous, VarRole::kEvent, {}};
  Variable obj{"latency", VarType::kContinuous, VarRole::kObjective, {}};
  return {opt, ev, obj};
}

TEST(TableTest, EmptyTable) {
  DataTable t(MakeVars());
  EXPECT_EQ(t.NumVars(), 3u);
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST(TableTest, AddAndReadRows) {
  DataTable t(MakeVars());
  t.AddRow({1.0, 10.0, 100.0});
  t.AddRow({2.0, 20.0, 200.0});
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.At(0, 0), 1.0);
  EXPECT_EQ(t.At(1, 2), 200.0);
  EXPECT_EQ(t.Row(1), (std::vector<double>{2.0, 20.0, 200.0}));
}

TEST(TableTest, SetMutatesCell) {
  DataTable t(MakeVars());
  t.AddRow({0.0, 0.0, 0.0});
  t.Set(0, 1, 42.0);
  EXPECT_EQ(t.At(0, 1), 42.0);
}

TEST(TableTest, IndexOfFindsByName) {
  DataTable t(MakeVars());
  EXPECT_EQ(t.IndexOf("event").value(), 1u);
  EXPECT_FALSE(t.IndexOf("missing").has_value());
}

TEST(TableTest, SelectVarsReorders) {
  DataTable t(MakeVars());
  t.AddRow({1.0, 2.0, 3.0});
  DataTable s = t.SelectVars({2, 0});
  EXPECT_EQ(s.NumVars(), 2u);
  EXPECT_EQ(s.Var(0).name, "latency");
  EXPECT_EQ(s.At(0, 0), 3.0);
  EXPECT_EQ(s.At(0, 1), 1.0);
}

TEST(TableTest, SelectRowsSubsets) {
  DataTable t(MakeVars());
  for (int i = 0; i < 5; ++i) {
    t.AddRow({static_cast<double>(i), 0.0, 0.0});
  }
  DataTable s = t.SelectRows({4, 1});
  EXPECT_EQ(s.NumRows(), 2u);
  EXPECT_EQ(s.At(0, 0), 4.0);
  EXPECT_EQ(s.At(1, 0), 1.0);
}

TEST(TableTest, AppendRowsConcatenates) {
  DataTable a(MakeVars());
  DataTable b(MakeVars());
  a.AddRow({1.0, 1.0, 1.0});
  b.AddRow({2.0, 2.0, 2.0});
  b.AddRow({3.0, 3.0, 3.0});
  a.AppendRows(b);
  EXPECT_EQ(a.NumRows(), 3u);
  EXPECT_EQ(a.At(2, 0), 3.0);
}

TEST(TableTest, IndicesWithRole) {
  DataTable t(MakeVars());
  EXPECT_EQ(t.IndicesWithRole(VarRole::kOption), (std::vector<size_t>{0}));
  EXPECT_EQ(t.IndicesWithRole(VarRole::kEvent), (std::vector<size_t>{1}));
  EXPECT_EQ(t.IndicesWithRole(VarRole::kObjective), (std::vector<size_t>{2}));
}

TEST(TableTest, VariableIntervenable) {
  DataTable t(MakeVars());
  EXPECT_TRUE(t.Var(0).Intervenable());
  EXPECT_FALSE(t.Var(1).Intervenable());
}

TEST(TableTest, TypeAndRoleNames) {
  EXPECT_STREQ(VarTypeName(VarType::kBinary), "binary");
  EXPECT_STREQ(VarTypeName(VarType::kDiscrete), "discrete");
  EXPECT_STREQ(VarTypeName(VarType::kContinuous), "continuous");
  EXPECT_STREQ(VarRoleName(VarRole::kOption), "option");
  EXPECT_STREQ(VarRoleName(VarRole::kEvent), "event");
  EXPECT_STREQ(VarRoleName(VarRole::kObjective), "objective");
}

}  // namespace
}  // namespace unicorn
