// Transfer campaigns on heterogeneous fleets: the acceptance stack of the
// transfer rework.
//
//   * The fleet-backed path — record the source environment, persist the
//     table, replay it through a RecordedBackend into a fleet with live
//     target devices, debug via TransferPolicy — must be BIT-IDENTICAL to
//     the legacy warm-table path (UnicornDebugger::Debug(fault, goals,
//     &warm_table)): same rows, same refresh-seed stream, same model, same
//     diagnosis. The fleet is plumbing, never semantics.
//   * The "Reuse" scenario issues zero fresh source-hardware measurements:
//     every source row is served by the recording (there is no live source
//     member to leak onto, and tagged target requests cannot land on the
//     recording either).
#include "unicorn/campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "eval/harness.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/backend/recorded_backend.h"
#include "unicorn/debugger.h"

namespace unicorn {
namespace {

struct Scenario {
  std::shared_ptr<SystemModel> model;
  PerformanceTask target_task;  // TX2, the debugging environment
  FaultCuration curation;
  uint64_t target_task_seed = 0;
};

Scenario MakeScenario(uint64_t seed) {
  Scenario s;
  SystemSpec spec;
  spec.num_events = 10;
  s.model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  Rng rng(seed);
  s.curation = CurateFaults(*s.model, Tx2(), DefaultWorkload(), 1200, &rng, 0.97);
  s.target_task_seed = seed + 1;
  s.target_task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), s.target_task_seed);
  return s;
}

DebugOptions FastDebugOptions() {
  DebugOptions options;
  options.initial_samples = 15;
  options.max_iterations = 10;
  options.stall_termination = 20;
  options.repairs_per_iteration = 2;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 16;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 25;
  return options;
}

const Fault* PickFault(const FaultCuration& curation) {
  for (const auto& f : curation.faults) {
    if (!f.root_causes.empty()) {
      return &f;
    }
  }
  return nullptr;
}

// Records `count` Xavier measurements through a source fleet (one live
// Xavier device), persists them, and returns the loaded table — provenance
// column "Xavier" throughout.
MeasurementTable RecordSource(const Scenario& s, size_t count, uint64_t seed,
                              const std::string& path) {
  const PerformanceTask src_task =
      MakeSimulatedTask(s.model, Xavier(), DefaultWorkload(), seed);
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  DeviceProfile profile;
  profile.name = "xavier-live";
  profile.seed = seed + 100;
  backends.push_back(
      MakeDeviceBackend(s.model, Xavier(), DefaultWorkload(), seed, std::move(profile)));
  MeasurementBroker recorder(src_task, std::make_unique<BackendFleet>(std::move(backends)));

  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < count; ++i) {
    configs.push_back(s.model->SampleConfig(&rng));
  }
  recorder.MeasureBatch(configs, std::vector<std::string>(configs.size(), "Xavier"));
  EXPECT_TRUE(recorder.SaveCache(path));

  MeasurementTable table;
  EXPECT_TRUE(LoadMeasurementTable(path, &table));
  EXPECT_EQ(table.entries.size(), count);
  EXPECT_EQ(table.UniformProvenance(), "Xavier");
  return table;
}

// Target fleet: the source recording + two live TX2 devices whose task seed
// matches the target task (so fleet rows equal pool-mode rows).
std::unique_ptr<BackendFleet> MakeTargetFleet(const Scenario& s,
                                              const MeasurementTable& source_table) {
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  backends.push_back(std::make_unique<RecordedBackend>(source_table, "xavier-recorded"));
  for (int b = 0; b < 2; ++b) {
    DeviceProfile profile;
    profile.name = "tx2-" + std::to_string(b);
    profile.seed = 400 + static_cast<uint64_t>(b);
    backends.push_back(MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(),
                                         s.target_task_seed, std::move(profile)));
  }
  return std::make_unique<BackendFleet>(std::move(backends));
}

// The acceptance pin: fleet-backed TransferPolicy == legacy warm-table
// Debug, bit for bit, for both the "+N fresh samples" and the "Reuse"
// (zero fresh bootstrap samples) shapes.
TEST(TransferCampaignTest, FleetTransferMatchesLegacyWarmTableBitForBit) {
  const Scenario s = MakeScenario(500);
  const Fault* fault = PickFault(s.curation);
  ASSERT_NE(fault, nullptr);
  const auto goals = GoalsForFault(s.curation, *fault);

  const std::string path = ::testing::TempDir() + "transfer_source_table.csv";
  const MeasurementTable source_table = RecordSource(s, 40, 510, path);

  // Legacy warm table: the same rows, in the same order, as a DataTable.
  DataTable warm(s.model->variables());
  warm.Reserve(source_table.entries.size());
  for (const auto& entry : source_table.entries) {
    warm.AddRow(entry.row);
  }

  for (const size_t initial_samples : {size_t{15}, size_t{0}}) {
    DebugOptions options = FastDebugOptions();
    options.initial_samples = initial_samples;

    // Legacy path: pool-mode broker, warm-start DataTable.
    UnicornDebugger debugger(s.target_task, options);
    const DebugResult legacy = debugger.Debug(fault->config, goals, &warm);

    // Fleet path: recorded source + live TX2 devices, TransferPolicy.
    DebugOptions fleet_options = options;
    fleet_options.environment = "TX2";  // fresh rows only from live TX2
    CampaignRunner runner(s.target_task, ToCampaignOptions(fleet_options),
                          MakeTargetFleet(s, source_table));
    DebugPolicy inner(fleet_options, fault->config, goals);
    TransferOptions transfer_options;
    transfer_options.source_environment = "Xavier";
    TransferPolicy transfer(transfer_options, source_table, &inner);
    runner.Run({&transfer});
    const DebugResult& fleet = inner.result();

    EXPECT_EQ(fleet.fixed, legacy.fixed) << "initial_samples=" << initial_samples;
    EXPECT_EQ(fleet.measurements_used, legacy.measurements_used);
    EXPECT_EQ(fleet.fixed_config, legacy.fixed_config);
    EXPECT_EQ(fleet.fixed_measurement, legacy.fixed_measurement);
    EXPECT_EQ(fleet.objective_trajectory, legacy.objective_trajectory);
    EXPECT_EQ(fleet.selected_options, legacy.selected_options);
    EXPECT_EQ(fleet.predicted_root_causes, legacy.predicted_root_causes);
    EXPECT_EQ(fleet.tests_per_iteration, legacy.tests_per_iteration);
    EXPECT_TRUE(fleet.final_graph == legacy.final_graph);

    // Both paths report the same provenance split.
    EXPECT_EQ(fleet.source_rows, source_table.entries.size());
    EXPECT_EQ(legacy.source_rows, source_table.entries.size());
    EXPECT_EQ(fleet.target_rows, fleet.measurements_used);
    EXPECT_EQ(transfer.stats().source_rows, source_table.entries.size());
    EXPECT_EQ(transfer.stats().target_rows, fleet.measurements_used);

    // Zero fresh source-hardware measurements: the recording answered every
    // source-tagged request, the live TX2 members everything else.
    const FleetStats stats = runner.broker().fleet_stats();
    ASSERT_EQ(stats.backends.size(), 3u);
    EXPECT_EQ(stats.backends[0].environment, "Xavier");
    EXPECT_EQ(stats.backends[0].completed, source_table.entries.size());
    size_t live_completed = 0;
    for (size_t b = 1; b < stats.backends.size(); ++b) {
      EXPECT_EQ(stats.backends[b].environment, "TX2");
      live_completed += stats.backends[b].completed;
    }
    EXPECT_EQ(live_completed, runner.broker().stats().measured -
                                  source_table.entries.size());
    EXPECT_EQ(stats.failed, 0u);
  }
  std::remove(path.c_str());
}

// TransferPolicy through the async runner: same contract, no barrier.
TEST(TransferCampaignTest, AsyncFleetTransferMatchesSyncBitForBit) {
  const Scenario s = MakeScenario(520);
  const Fault* fault = PickFault(s.curation);
  ASSERT_NE(fault, nullptr);
  const auto goals = GoalsForFault(s.curation, *fault);

  const std::string path = ::testing::TempDir() + "transfer_async_table.csv";
  const MeasurementTable source_table = RecordSource(s, 30, 530, path);

  auto run = [&](bool async) {
    // Deliberately no per-policy environment: TransferOptions'
    // target_environment backstop must tag the inner rounds instead.
    DebugOptions options = FastDebugOptions();
    CampaignRunner runner(s.target_task, ToCampaignOptions(options),
                          MakeTargetFleet(s, source_table));
    DebugPolicy inner(options, fault->config, goals);
    TransferOptions transfer_options;
    transfer_options.source_environment = "Xavier";
    transfer_options.target_environment = "TX2";
    TransferPolicy transfer(transfer_options, source_table, &inner);
    if (async) {
      runner.RunAsync({&transfer});
    } else {
      runner.Run({&transfer});
    }
    // The backstop held: the recording served exactly the replay, the live
    // TX2 members everything fresh.
    const FleetStats stats = runner.broker().fleet_stats();
    EXPECT_EQ(stats.backends[0].completed, source_table.entries.size());
    EXPECT_EQ(stats.failed, 0u);
    return inner.result();
  };
  const DebugResult sync_result = run(false);
  const DebugResult async_result = run(true);

  EXPECT_EQ(async_result.fixed, sync_result.fixed);
  EXPECT_EQ(async_result.measurements_used, sync_result.measurements_used);
  EXPECT_EQ(async_result.fixed_config, sync_result.fixed_config);
  EXPECT_EQ(async_result.objective_trajectory, sync_result.objective_trajectory);
  EXPECT_EQ(async_result.predicted_root_causes, sync_result.predicted_root_causes);
  EXPECT_TRUE(async_result.final_graph == sync_result.final_graph);
  std::remove(path.c_str());
}

// max_source_rows caps the replay; an empty recording degrades the wrapper
// to pure delegation (identical to running the inner policy alone).
TEST(TransferCampaignTest, ReplayCapAndEmptyTableDegradeGracefully) {
  const Scenario s = MakeScenario(540);
  const Fault* fault = PickFault(s.curation);
  ASSERT_NE(fault, nullptr);
  const auto goals = GoalsForFault(s.curation, *fault);

  const std::string path = ::testing::TempDir() + "transfer_cap_table.csv";
  const MeasurementTable source_table = RecordSource(s, 25, 550, path);

  {
    DebugOptions options = FastDebugOptions();
    options.environment = "TX2";
    CampaignRunner runner(s.target_task, ToCampaignOptions(options),
                          MakeTargetFleet(s, source_table));
    DebugPolicy inner(options, fault->config, goals);
    TransferOptions transfer_options;
    transfer_options.source_environment = "Xavier";
    transfer_options.max_source_rows = 10;
    TransferPolicy transfer(transfer_options, source_table, &inner);
    runner.Run({&transfer});
    EXPECT_EQ(transfer.stats().source_rows, 10u);
    EXPECT_EQ(inner.result().source_rows, 10u);
  }
  {
    DebugOptions options = FastDebugOptions();
    const CampaignOptions campaign = ToCampaignOptions(options);

    CampaignRunner plain_runner(s.target_task, campaign);
    DebugPolicy plain(options, fault->config, goals);
    plain_runner.Run({&plain});

    CampaignRunner wrapped_runner(s.target_task, campaign);
    DebugPolicy inner(options, fault->config, goals);
    TransferPolicy transfer(TransferOptions{}, MeasurementTable{}, &inner);
    wrapped_runner.Run({&transfer});

    EXPECT_EQ(transfer.stats().source_rows, 0u);
    EXPECT_EQ(inner.result().fixed_config, plain.result().fixed_config);
    EXPECT_EQ(inner.result().measurements_used, plain.result().measurements_used);
    EXPECT_TRUE(inner.result().final_graph == plain.result().final_graph);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace unicorn
