#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

TEST(CsvTest, EscapePlainFieldUnchanged) { EXPECT_EQ(CsvEscape("hello"), "hello"); }

TEST(CsvTest, EscapeCommaQuotes) { EXPECT_EQ(CsvEscape("a,b"), "\"a,b\""); }

TEST(CsvTest, EscapeEmbeddedQuote) { EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\""); }

TEST(CsvTest, EscapeNewline) { EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\""); }

TEST(CsvTest, WritesRowsToFile) {
  const std::string path = "/tmp/unicorn_csv_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"x", "y"});
    writer.WriteNumericRow({1.5, 2.25});
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "x,y");
  EXPECT_EQ(line2, "1.5,2.25");
  std::remove(path.c_str());
}

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "2"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable table({"label", "a", "b"});
  table.AddRow("row", {1.234, 5.678}, 1);
  const std::string out = table.Render();
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("5.7"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NE(table.Render().find("only"), std::string::npos);
}

TEST(TextTableTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace unicorn
