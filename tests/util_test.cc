#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/bounded_queue.h"
#include "util/csv.h"
#include "util/text_table.h"
#include "util/thread_pool.h"

namespace unicorn {
namespace {

TEST(CsvTest, EscapePlainFieldUnchanged) { EXPECT_EQ(CsvEscape("hello"), "hello"); }

TEST(CsvTest, EscapeCommaQuotes) { EXPECT_EQ(CsvEscape("a,b"), "\"a,b\""); }

TEST(CsvTest, EscapeEmbeddedQuote) { EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\""); }

TEST(CsvTest, EscapeNewline) { EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\""); }

TEST(CsvTest, WritesRowsToFile) {
  const std::string path = "/tmp/unicorn_csv_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"x", "y"});
    writer.WriteNumericRow({1.5, 2.25});
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "x,y");
  EXPECT_EQ(line2, "1.5,2.25");
  std::remove(path.c_str());
}

TEST(CsvTest, ReaderRoundTripsWriterOutput) {
  const std::string path = "/tmp/unicorn_csv_roundtrip_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"plain", "with,comma", "with \"quote\"", "multi\nline"});
    writer.WriteNumericRow({0.1, -2.5e-17, 3.0}, 17);
  }
  CsvReader reader(path);
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> row;
  ASSERT_TRUE(reader.ReadRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"plain", "with,comma", "with \"quote\"",
                                           "multi\nline"}));
  ASSERT_TRUE(reader.ReadRow(&row));
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(std::stod(row[0]), 0.1);  // 17 digits round-trip bit-exactly
  EXPECT_EQ(std::stod(row[1]), -2.5e-17);
  EXPECT_FALSE(reader.ReadRow(&row));
  std::remove(path.c_str());
}

TEST(CsvTest, SplitHandlesEmptyAndQuotedFields) {
  EXPECT_EQ(CsvSplit("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(CsvSplit("\"a,b\",c"), (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(CsvSplit(""), (std::vector<std::string>{""}));
}

TEST(BoundedQueueTest, FifoOrderAndTryPop) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  int value = 0;
  EXPECT_TRUE(queue.TryPop(&value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 2);
  EXPECT_FALSE(queue.TryPop(&value));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPopped) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    queue.Push(3);  // must block until the consumer makes room
    third_pushed = true;
  });
  EXPECT_FALSE(third_pushed.load());
  int value = 0;
  ASSERT_TRUE(queue.Pop(&value));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, ForcePushExceedsCapacity) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.ForcePush(2));  // beyond the bound, without blocking
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenFails) {
  BoundedQueue<int> queue(4);
  queue.Push(7);
  queue.Close();
  EXPECT_FALSE(queue.Push(8));
  EXPECT_FALSE(queue.ForcePush(9));
  int value = 0;
  EXPECT_TRUE(queue.Pop(&value));  // drains what was queued before the close
  EXPECT_EQ(value, 7);
  EXPECT_FALSE(queue.Pop(&value));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::thread consumer([&] {
    int value = 0;
    EXPECT_FALSE(queue.Pop(&value));  // blocked empty, then closed
  });
  queue.Close();
  consumer.join();
}

TEST(BoundedQueueTest, DrainNowEmptiesTheQueue) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    queue.Push(i);
  }
  const std::vector<int> drained = queue.DrainNow();
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, PopForTimesOutThenDelivers) {
  BoundedQueue<int> queue(4);
  int value = 0;
  // Nothing queued: the timed pop returns false after the timeout.
  EXPECT_FALSE(queue.PopFor(&value, std::chrono::milliseconds(5)));
  queue.Push(41);
  EXPECT_TRUE(queue.PopFor(&value, std::chrono::milliseconds(5)));
  EXPECT_EQ(value, 41);

  // A waiting PopFor wakes on arrival, well before a generous timeout.
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.Push(42);
  });
  EXPECT_TRUE(queue.PopFor(&value, std::chrono::seconds(10)));
  EXPECT_EQ(value, 42);
  producer.join();

  // Closed and drained reads as false, same as TryPop.
  queue.Close();
  EXPECT_FALSE(queue.PopFor(&value, std::chrono::milliseconds(5)));
}

TEST(TaskPoolTest, SubmitRunsTasksAndDrainWaits) {
  TaskPool::Options options;
  options.num_threads = 2;
  TaskPool pool(options);
  EXPECT_EQ(pool.num_threads(), 2);

  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 16);

  // Drain on an idle pool returns immediately; the pool is reusable after.
  pool.Drain();
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Drain();
  EXPECT_EQ(ran.load(), 17);
}

// Priority is shortest-job-first dispatch order for queued tasks: with the
// single worker held busy, the high-priority submission overtakes earlier
// low-priority ones, and equal priorities keep submission (FIFO) order.
TEST(TaskPoolTest, HigherPriorityOvertakesQueueFifoOnTies) {
  TaskPool::Options options;
  options.num_threads = 1;
  TaskPool pool(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;
  pool.Submit([&] {  // occupies the lone worker until every task is queued
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  const auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  pool.Submit([&, id = 1] { record(id); }, /*priority=*/-10);
  pool.Submit([&, id = 2] { record(id); }, /*priority=*/-10);
  pool.Submit([&, id = 3] { record(id); }, /*priority=*/0);
  pool.Submit([&, id = 4] { record(id); }, /*priority=*/-10);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_one();
  pool.Drain();
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2, 4}));
}

// pin_threads is a best-effort hint: pools must construct and run work with
// it on regardless of the host's affinity rights.
TEST(ThreadPoolTest, PinnedPoolsStillRunWork) {
  ThreadPool::Options options;
  options.num_threads = 2;
  options.pin_threads = true;
  ThreadPool pool(options);
  std::atomic<int> sum{0};
  pool.ParallelFor(8, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 28);

  TaskPool task_pool(options);
  std::atomic<int> ran{0};
  task_pool.Submit([&ran] { ran.fetch_add(1); });
  task_pool.Drain();
  EXPECT_EQ(ran.load(), 1);
}

TEST(CpuTopologyTest, DetectionIsInternallyConsistent) {
  const CpuTopology topo = DetectCpuTopology();
  EXPECT_GE(topo.logical_cpus, 1);
  if (topo.physical_cores > 0) {
    EXPECT_LE(topo.physical_cores, topo.logical_cpus);
    EXPECT_EQ(topo.core_leaders.size(), static_cast<size_t>(topo.physical_cores));
    EXPECT_EQ(topo.smt_siblings, topo.logical_cpus > topo.physical_cores);
    // Leaders are distinct CPUs, one per core.
    for (size_t i = 1; i < topo.core_leaders.size(); ++i) {
      EXPECT_NE(topo.core_leaders[i], topo.core_leaders[i - 1]);
    }
  } else {
    EXPECT_TRUE(topo.core_leaders.empty());
  }
}

TEST(CpuTopologyTest, PlanPinningDeclinesOversubscription) {
  CpuTopology topo;
  topo.logical_cpus = 8;
  topo.physical_cores = 4;
  topo.smt_siblings = true;
  topo.core_leaders = {0, 2, 4, 6};
  // Fits: one whole core per thread, never a hyperthread sibling.
  EXPECT_EQ(PlanPinning(topo, 4), topo.core_leaders);
  EXPECT_EQ(PlanPinning(topo, 1), topo.core_leaders);
  // Oversubscribed or unknown: no pinning at all.
  EXPECT_TRUE(PlanPinning(topo, 5).empty());
  EXPECT_TRUE(PlanPinning(topo, 0).empty());
  EXPECT_TRUE(PlanPinning(CpuTopology{}, 2).empty());
}

TEST(CpuTopologyTest, PoolsReportPinnedWorkers) {
  const CpuTopology topo = DetectCpuTopology();
  ThreadPool::Options options;
  options.num_threads = 4;
  options.pin_threads = true;
  ThreadPool pool(options);
  // Pinning happens exactly when the plan says this host can afford it.
  const bool should_pin = !PlanPinning(topo, 4).empty();
  EXPECT_EQ(pool.pinned_workers(), should_pin ? 3 : 0);

  ThreadPool::Options unpinned;
  unpinned.num_threads = 4;
  ThreadPool plain(unpinned);
  EXPECT_EQ(plain.pinned_workers(), 0);
}

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "2"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable table({"label", "a", "b"});
  table.AddRow("row", {1.234, 5.678}, 1);
  const std::string out = table.Render();
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("5.7"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NE(table.Render().find("only"), std::string::npos);
}

TEST(TextTableTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace unicorn
