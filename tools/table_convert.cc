// Lossless MeasurementTable converter: CSV (v1/v2) <-> compact binary.
//
//   table_convert <input> <output>            format inferred from output ext
//   table_convert --to-binary <input> <output>
//   table_convert --to-csv    <input> <output>
//
// The input format is always sniffed from the file itself (binary magic vs
// CSV header), never from its name. Doubles survive the round trip
// bit-exactly in both directions: CSV stores 17 significant digits, binary
// stores the raw IEEE bit patterns. Exit code 0 on success, 1 on any
// failure, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "unicorn/backend/binary_table.h"
#include "unicorn/backend/measurement_table.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--to-binary|--to-csv] <input> <output>\n"
               "  converts a measurement table between CSV (v1/v2) and the\n"
               "  compact binary format, losslessly in both directions.\n"
               "  Without a flag, the output format is inferred from the\n"
               "  output extension (.bin/.utbl -> binary, otherwise CSV).\n",
               argv0);
  return 2;
}

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  int arg = 1;
  int mode = 0;  // 0 = infer, 1 = binary, 2 = csv
  if (arg < argc && std::strcmp(argv[arg], "--to-binary") == 0) {
    mode = 1;
    ++arg;
  } else if (arg < argc && std::strcmp(argv[arg], "--to-csv") == 0) {
    mode = 2;
    ++arg;
  }
  if (argc - arg != 2) {
    return Usage(argv[0]);
  }
  const std::string input = argv[arg];
  const std::string output = argv[arg + 1];
  if (mode == 0) {
    mode = HasSuffix(output, ".bin") || HasSuffix(output, ".utbl") ? 1 : 2;
  }

  unicorn::MeasurementTable table;
  if (!unicorn::LoadMeasurementTable(input, &table)) {
    std::fprintf(stderr, "table_convert: failed to load %s\n", input.c_str());
    return 1;
  }
  const bool ok = mode == 1 ? unicorn::SaveMeasurementTableBinary(output, table)
                            : unicorn::SaveMeasurementTable(output, table);
  if (!ok) {
    std::fprintf(stderr, "table_convert: failed to write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(stderr, "table_convert: %zu rows (%zu options, %zu vars) -> %s (%s)\n",
               table.entries.size(), table.num_options, table.num_vars, output.c_str(),
               mode == 1 ? "binary" : "csv");
  return 0;
}
