// trace_report: validates and summarizes the Chrome-trace-event JSON the
// observability layer writes (obs::trace::WriteFile, bench `--trace`).
//
//   trace_report [--check] [--top N] <trace.json>
//
// Prints a per-phase (span name) table: count, total wall, duration
// percentiles (exact — the tool has every sample), and average concurrency
// (span-time divided by the union wall the name was active). Derived data:
// the pool's refresh-overlap is recomputed from the `overlap_credit` arg the
// "pool.refresh" spans carry, so the report cross-checks the scheduler's
// ledger without reading it.
//
// `--check` turns validation failures into a non-zero exit (CI gate):
//   * file parses as JSON with a "traceEvents" array;
//   * every event carries name/ph/pid/tid/ts (and dur >= 0 for "X");
//   * complete events nest strictly per tid — spans on one thread may
//     contain each other but never partially overlap (the tracer emits from
//     a per-thread stack, so a violation means a corrupted trace).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

struct SpanRow {
  std::string name;
  uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  double overlap_credit = 0.0;
  bool has_overlap_credit = false;
};

struct TraceData {
  std::vector<SpanRow> spans;
  std::map<uint32_t, std::string> thread_names;
  size_t instants = 0;
  size_t counters = 0;
  size_t events = 0;
};

// Sub-microsecond slack for the nesting check: timestamps are doubles
// rounded independently at Begin and End, so a child's end may exceed its
// parent's by rounding noise, never by real time.
constexpr double kNestEpsUs = 0.5;

bool ValidateAndLoad(const json::Value& root, TraceData* out, std::string* error) {
  const json::Value* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    *error = "root has no \"traceEvents\" array";
    return false;
  }
  out->events = events->array_value.size();
  for (size_t i = 0; i < events->array_value.size(); ++i) {
    const json::Value& ev = *events->array_value[i];
    const auto fail = [&](const std::string& what) {
      *error = "event " + std::to_string(i) + ": " + what;
      return false;
    };
    if (!ev.is_object()) {
      return fail("not an object");
    }
    const json::Value* name = ev.Find("name");
    const json::Value* ph = ev.Find("ph");
    const json::Value* pid = ev.Find("pid");
    const json::Value* tid = ev.Find("tid");
    if (name == nullptr || !name->is_string()) {
      return fail("missing string \"name\"");
    }
    if (ph == nullptr || !ph->is_string() || ph->string_value.size() != 1) {
      return fail("missing one-char \"ph\"");
    }
    if (pid == nullptr || !pid->is_number() || tid == nullptr || !tid->is_number()) {
      return fail("missing numeric \"pid\"/\"tid\"");
    }
    const char phase = ph->string_value[0];
    if (phase == 'M') {
      // thread_name metadata: {"args":{"name": "..."}}
      const json::Value* args = ev.Find("args");
      const json::Value* tname = args != nullptr ? args->Find("name") : nullptr;
      if (name->string_value == "thread_name" && tname != nullptr && tname->is_string()) {
        out->thread_names[static_cast<uint32_t>(tid->number_value)] = tname->string_value;
      }
      continue;
    }
    const json::Value* ts = ev.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return fail("missing numeric \"ts\"");
    }
    if (phase == 'i') {
      ++out->instants;
      continue;
    }
    if (phase == 'C') {
      ++out->counters;
      continue;
    }
    if (phase != 'X') {
      return fail(std::string("unknown phase '") + phase + "'");
    }
    const json::Value* dur = ev.Find("dur");
    if (dur == nullptr || !dur->is_number() || dur->number_value < 0.0) {
      return fail("complete event without non-negative \"dur\"");
    }
    SpanRow row;
    row.name = name->string_value;
    row.tid = static_cast<uint32_t>(tid->number_value);
    row.ts_us = ts->number_value;
    row.dur_us = dur->number_value;
    if (const json::Value* args = ev.Find("args")) {
      if (const json::Value* credit = args->Find("overlap_credit")) {
        row.overlap_credit = credit->NumberOr(0.0);
        row.has_overlap_credit = true;
      }
    }
    out->spans.push_back(std::move(row));
  }
  return true;
}

// Spans on one tid must nest: sweep starts in order, maintain the enclosing
// stack, and flag any span that outlives its parent.
bool CheckNesting(const TraceData& data, std::string* error) {
  std::map<uint32_t, std::vector<const SpanRow*>> by_tid;
  for (const SpanRow& s : data.spans) {
    by_tid[s.tid].push_back(&s);
  }
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(), [](const SpanRow* a, const SpanRow* b) {
      if (a->ts_us != b->ts_us) {
        return a->ts_us < b->ts_us;
      }
      return a->dur_us > b->dur_us;  // enclosing span first on equal starts
    });
    std::vector<const SpanRow*> stack;
    for (const SpanRow* s : spans) {
      while (!stack.empty() &&
             stack.back()->ts_us + stack.back()->dur_us <= s->ts_us + kNestEpsUs) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        const double parent_end = stack.back()->ts_us + stack.back()->dur_us;
        if (s->ts_us + s->dur_us > parent_end + kNestEpsUs) {
          *error = "tid " + std::to_string(tid) + ": span \"" + s->name +
                   "\" overlaps \"" + stack.back()->name + "\" without nesting";
          return false;
        }
      }
      stack.push_back(s);
    }
  }
  return true;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<size_t>(rank, 1)) - 1];
}

// Union wall of a set of [ts, ts+dur) intervals.
double UnionWallUs(std::vector<std::pair<double, double>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0, cur_start = 0.0, cur_end = -1.0;
  for (const auto& [start, end] : intervals) {
    if (end <= cur_end) {
      continue;
    }
    if (start > cur_end) {
      if (cur_end > cur_start) {
        total += cur_end - cur_start;
      }
      cur_start = start;
    }
    cur_end = end;
  }
  if (cur_end > cur_start) {
    total += cur_end - cur_start;
  }
  return total;
}

int Report(const TraceData& data, size_t top) {
  struct PhaseAgg {
    std::vector<double> durs_us;
    std::vector<std::pair<double, double>> intervals;
    double total_us = 0.0;
  };
  std::map<std::string, PhaseAgg> phases;
  double min_ts = 0.0, max_end = 0.0;
  bool any = false;
  double derived_overlap_s = 0.0;
  for (const SpanRow& s : data.spans) {
    PhaseAgg& agg = phases[s.name];
    agg.durs_us.push_back(s.dur_us);
    agg.intervals.push_back({s.ts_us, s.ts_us + s.dur_us});
    agg.total_us += s.dur_us;
    if (!any || s.ts_us < min_ts) {
      min_ts = s.ts_us;
    }
    if (!any || s.ts_us + s.dur_us > max_end) {
      max_end = s.ts_us + s.dur_us;
    }
    any = true;
    if (s.name == "pool.refresh" && s.has_overlap_credit) {
      derived_overlap_s += s.dur_us * s.overlap_credit / 1e6;
    }
  }
  const double wall_s = any ? (max_end - min_ts) / 1e6 : 0.0;
  std::printf("%zu events: %zu spans, %zu instants, %zu counter samples, %zu threads; "
              "span wall %.3fs\n",
              data.events, data.spans.size(), data.instants, data.counters,
              data.thread_names.size(), wall_s);
  for (const auto& [tid, name] : data.thread_names) {
    std::printf("  tid %u = %s\n", tid, name.c_str());
  }

  // Phases by total span time, descending.
  std::vector<std::pair<std::string, PhaseAgg*>> ordered;
  for (auto& [name, agg] : phases) {
    ordered.push_back({name, &agg});
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second->total_us > b.second->total_us; });
  if (ordered.size() > top) {
    ordered.resize(top);
  }

  TextTable table({"phase", "count", "total(s)", "p50(ms)", "p95(ms)", "p99(ms)",
                   "max(ms)", "avg conc"});
  for (auto& [name, agg] : ordered) {
    std::sort(agg->durs_us.begin(), agg->durs_us.end());
    const double union_us = UnionWallUs(agg->intervals);
    table.AddRow({name, std::to_string(agg->durs_us.size()),
                  FormatDouble(agg->total_us / 1e6, 3),
                  FormatDouble(Percentile(agg->durs_us, 0.5) / 1e3, 3),
                  FormatDouble(Percentile(agg->durs_us, 0.95) / 1e3, 3),
                  FormatDouble(Percentile(agg->durs_us, 0.99) / 1e3, 3),
                  FormatDouble(agg->durs_us.back() / 1e3, 3),
                  FormatDouble(union_us > 0.0 ? agg->total_us / union_us : 0.0, 2)});
  }
  std::printf("%s", table.Render().c_str());
  if (derived_overlap_s > 0.0) {
    std::printf("derived refresh overlap (sum dur x overlap_credit over pool.refresh): "
                "%.3fs\n",
                derived_overlap_s);
  }
  return 0;
}

int Run(int argc, char** argv) {
  bool check = false;
  size_t top = 24;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<size_t>(std::atoi(argv[++i]));
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_report [--check] [--top N] <trace.json>\n");
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::string error;
  const json::ValuePtr root = json::Parse(text, &error);
  if (root == nullptr) {
    std::fprintf(stderr, "trace_report: %s: JSON parse error: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  TraceData data;
  if (!ValidateAndLoad(*root, &data, &error)) {
    std::fprintf(stderr, "trace_report: %s: invalid trace: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  if (!CheckNesting(data, &error)) {
    std::fprintf(stderr, "trace_report: %s: nesting violation: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  const int status = Report(data, top);
  if (check) {
    std::printf("trace OK: %zu events validated, per-thread nesting strict\n", data.events);
  }
  return status;
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) { return unicorn::Run(argc, argv); }
